//! Per-backend health tracking: consecutive-failure ejection with
//! half-open recovery.
//!
//! The state machine is the standard circuit breaker:
//!
//! ```text
//!            k consecutive failures
//!  Healthy ──────────────────────────▶ Ejected
//!     ▲                                   │ cooldown elapses
//!     │ success                           ▼
//!     └──────────────────────────── HalfOpen
//!                 failure ──▶ back to Ejected (cooldown restarts)
//! ```
//!
//! Ejected backends are skipped by the routing fast path (no point
//! burning a connect timeout on a corpse every request); half-open
//! backends are probed again — by the prober thread and by real
//! traffic when healthier replicas are exhausted — and one success
//! readmits them.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What the router may do with a backend right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// In good standing: first choice for routing.
    Healthy,
    /// Cooling off after ejection: do not route to it.
    Ejected,
    /// Cooldown elapsed: a trial request decides its fate.
    HalfOpen,
}

/// One backend's breaker state.
#[derive(Debug, Default)]
struct BackendState {
    consecutive_failures: u32,
    ejected_at: Option<Instant>,
}

/// Health table for a fleet of backends, shared between the routing
/// workers and the prober thread.
#[derive(Debug)]
pub struct HealthTable {
    states: Vec<Mutex<BackendState>>,
    eject_after: u32,
    cooldown: Duration,
}

impl HealthTable {
    /// A table of `backends` members, ejecting after `eject_after`
    /// consecutive failures for `cooldown` per ejection.
    pub fn new(backends: usize, eject_after: u32, cooldown: Duration) -> HealthTable {
        HealthTable {
            states: (0..backends).map(|_| Mutex::default()).collect(),
            eject_after: eject_after.max(1),
            cooldown,
        }
    }

    /// The backend's current availability.
    pub fn availability(&self, backend: usize) -> Availability {
        let state = self.states[backend].lock().expect("health lock");
        match state.ejected_at {
            None => Availability::Healthy,
            Some(at) if at.elapsed() >= self.cooldown => Availability::HalfOpen,
            Some(_) => Availability::Ejected,
        }
    }

    /// Record a successful probe or request: full readmission.
    pub fn record_success(&self, backend: usize) {
        let mut state = self.states[backend].lock().expect("health lock");
        state.consecutive_failures = 0;
        state.ejected_at = None;
    }

    /// Record a failed probe or request. An already-ejected (or
    /// half-open) backend goes straight back to cooling; a healthy one
    /// is ejected once the consecutive-failure threshold is met.
    pub fn record_failure(&self, backend: usize) {
        let mut state = self.states[backend].lock().expect("health lock");
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if state.ejected_at.is_some() || state.consecutive_failures >= self.eject_after {
            state.ejected_at = Some(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejection_needs_consecutive_failures_and_success_resets() {
        let table = HealthTable::new(2, 3, Duration::from_secs(60));
        table.record_failure(0);
        table.record_failure(0);
        assert_eq!(table.availability(0), Availability::Healthy);
        // A success in between breaks the streak.
        table.record_success(0);
        table.record_failure(0);
        table.record_failure(0);
        assert_eq!(table.availability(0), Availability::Healthy);
        table.record_failure(0);
        assert_eq!(table.availability(0), Availability::Ejected);
        // Backend 1 is untouched.
        assert_eq!(table.availability(1), Availability::Healthy);
    }

    #[test]
    fn cooldown_half_opens_and_the_trial_decides() {
        let table = HealthTable::new(1, 1, Duration::from_millis(20));
        table.record_failure(0);
        assert_eq!(table.availability(0), Availability::Ejected);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(table.availability(0), Availability::HalfOpen);
        // A failed trial re-ejects immediately (no threshold to re-earn).
        table.record_failure(0);
        assert_eq!(table.availability(0), Availability::Ejected);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(table.availability(0), Availability::HalfOpen);
        // A successful trial readmits fully.
        table.record_success(0);
        assert_eq!(table.availability(0), Availability::Healthy);
    }
}
