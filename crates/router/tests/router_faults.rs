//! The fleet contract: a router in front of replicated backends keeps
//! answering **byte-identically** to a direct in-process `Session`
//! while any single backend is down, refusing connections, truncating
//! responses mid-frame, or stalling — and every degraded path is a
//! bounded, typed refusal rather than a hang.
//!
//! The harness is deterministic: backends are in-process `Server`s,
//! the misbehaving one sits behind a [`FaultProxy`], and placement is
//! chosen by scanning seeds until every backend is the consistent-hash
//! primary for at least one run.

use proptest::prelude::*;
use rpq_core::Session;
use rpq_labeling::{Run, RunBuilder};
use rpq_router::ring::HashRing;
use rpq_router::{Router, RouterConfig};
use rpq_serve::faults::{corrupt_artifacts, FaultMode, FaultProxy};
use rpq_serve::protocol::{QuerySpec, RunAddr, WireMode, WireRequest, WireResponse, WireResult};
use rpq_serve::{RetryPolicy, ServeClient, ServeConfig, Server};
use rpq_store::RunStore;
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const BACKENDS: usize = 3;
const REPLICATION: usize = 2;
const QUERIES: [&str; 4] = ["_* e _*", "a", "a+", "_* e _* a _*"];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_router_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs chosen so `runs[i]` has ring primary `i` for `i < BACKENDS`
/// (plus one extra): every backend is some run's first routing choice,
/// so faulting any one of them is guaranteed to sit on a hot path.
fn build_runs(spec: &rpq_grammar::Specification) -> Vec<Run> {
    let ring = HashRing::new(BACKENDS);
    let mut by_primary: Vec<Option<Run>> = (0..BACKENDS).map(|_| None).collect();
    let mut extra = None;
    let mut seen = BTreeSet::new();
    for seed in 1..=64u64 {
        let run = RunBuilder::new(spec)
            .seed(seed)
            .target_edges(48 + (seed as usize % 7) * 6)
            .build()
            .unwrap();
        let (hi, lo) = run.fingerprint();
        // Same-size targets can saturate to structurally identical
        // runs; only distinct fingerprints are usable.
        if !seen.insert((hi, lo)) {
            continue;
        }
        let primary = ring.primary(hi, lo).unwrap();
        if by_primary[primary].is_none() {
            by_primary[primary] = Some(run);
        } else if extra.is_none() {
            extra = Some(run);
        }
        if extra.is_some() && by_primary.iter().all(|r| r.is_some()) {
            break;
        }
    }
    let mut runs: Vec<Run> = by_primary
        .into_iter()
        .map(|r| r.expect("seed scan must cover every primary"))
        .collect();
    runs.push(extra.unwrap());
    runs
}

/// A whole in-process fleet: three backends (optionally one behind a
/// fault proxy), a router, and a direct-`Session` referee.
struct Fleet {
    router: SocketAddr,
    backends: Vec<SocketAddr>,
    backend_handles: Vec<rpq_serve::ShutdownHandle>,
    router_handle: rpq_router::ShutdownHandle,
    runs: Vec<Run>,
    referee: Session,
    proxy: Option<FaultProxy>,
}

impl Fleet {
    /// Start a fleet. Run `j` is seeded onto backend `(j + 1) % 3`
    /// only — deliberately *not* its ring replicas — so correctness
    /// under failover depends on the replication syncer doing its job.
    fn start(tag: &str, faulted: bool, sync: bool) -> Fleet {
        let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
        let runs = build_runs(&spec);
        let mut backends = Vec::new();
        let mut backend_handles = Vec::new();
        for b in 0..BACKENDS {
            let store =
                RunStore::create(temp_dir(&format!("{tag}_b{b}")), Arc::clone(&spec)).unwrap();
            for (j, run) in runs.iter().enumerate() {
                if (j + 1) % BACKENDS == b {
                    assert!(!store.ingest(run).unwrap().deduplicated);
                }
            }
            let server = Server::bind(
                store,
                &ServeConfig {
                    workers: 2,
                    queue: 16,
                    chunk_entries: 8,
                    deadline: Duration::from_secs(2),
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            server.warm().unwrap();
            backends.push(server.local_addr().unwrap());
            backend_handles.push(server.shutdown_handle());
            std::thread::spawn(move || server.run(None));
        }
        let proxy = faulted.then(|| FaultProxy::start(backends[0]).unwrap());
        let mut fronts = backends.clone();
        if let Some(proxy) = &proxy {
            fronts[0] = proxy.addr();
        }
        let router = Router::bind(&RouterConfig {
            backends: fronts,
            replication: REPLICATION,
            workers: 2,
            queue: 16,
            deadline: Duration::from_millis(700),
            retry: RetryPolicy::fixed(Duration::from_millis(10), Duration::from_millis(40)),
            eject_after: 2,
            cooldown: Duration::from_millis(150),
            probe_interval: Duration::from_millis(50),
            sync_interval: sync.then(|| Duration::from_millis(50)),
            chunk_entries: 8,
            ..RouterConfig::default()
        })
        .unwrap();
        let router_addr = router.local_addr().unwrap();
        let router_handle = router.shutdown_handle();
        std::thread::spawn(move || router.run(None));
        let fleet = Fleet {
            router: router_addr,
            backends,
            backend_handles,
            router_handle,
            runs,
            referee: Session::new(spec),
            proxy,
        };
        if sync {
            fleet.wait_replicated();
        }
        fleet
    }

    /// Block until every run is held by *all* of its ring replicas —
    /// the state in which any single backend is expendable.
    fn wait_replicated(&self) {
        let ring = HashRing::new(BACKENDS);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let holders: Vec<BTreeSet<(u64, u64)>> = self
                .backends
                .iter()
                .map(|&addr| {
                    let mut client = connect(addr);
                    client
                        .runs()
                        .unwrap()
                        .into_iter()
                        .map(|info| (info.fp_hi, info.fp_lo))
                        .collect()
                })
                .collect();
            let placed = self.runs.iter().all(|run| {
                let fp = run.fingerprint();
                ring.replicas_for(fp.0, fp.1, REPLICATION)
                    .into_iter()
                    .all(|b| holders[b].contains(&fp))
            });
            if placed {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "replication never converged: {holders:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn client(&self) -> ServeClient {
        connect(self.router)
    }

    /// The referee's binary rendering of (query, run, mode).
    fn expected(&self, run_idx: usize, query: &str, mode: &WireMode) -> Vec<u8> {
        let run = &self.runs[run_idx];
        let prepared = self.referee.prepare(query).unwrap();
        let request = mode.to_request(run).unwrap();
        let outcome = self.referee.evaluate(&prepared, run, &request);
        rpq_store::codec::to_bytes(&WireResult::from_result(&outcome.result))
    }

    /// Route (query, run, mode) through the router by fingerprint and
    /// return the binary rendering of the answer.
    fn routed(
        &self,
        client: &mut ServeClient,
        run_idx: usize,
        query: &str,
        mode: &WireMode,
    ) -> Vec<u8> {
        let (hi, lo) = self.runs[run_idx].fingerprint();
        let outcome = client
            .query(QuerySpec {
                query: query.to_owned(),
                policy: String::new(),
                strategy: String::new(),
                stages: false,
                run: RunAddr::Fingerprint(hi, lo),
                mode: mode.clone(),
            })
            .unwrap();
        rpq_store::codec::to_bytes(&outcome.result)
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.router_handle.shutdown();
        for handle in &self.backend_handles {
            handle.shutdown();
        }
    }
}

fn connect(addr: SocketAddr) -> ServeClient {
    ServeClient::connect_with_retry(addr, Duration::from_secs(5)).unwrap()
}

fn modes(run: &Run) -> Vec<WireMode> {
    let n = run.n_nodes() as u32;
    vec![
        WireMode::EntryExit,
        WireMode::AllPairsFull,
        WireMode::Reachable(0),
        WireMode::Pairwise(0, n - 1),
    ]
}

/// Any single backend may die: the fleet keeps answering every query
/// byte-identically, within a bounded time.
#[test]
fn every_query_survives_each_single_backend_down() {
    for victim in 0..BACKENDS {
        let fleet = Fleet::start(&format!("victim{victim}"), false, true);
        fleet.backend_handles[victim].shutdown();
        let mut client = fleet.client();
        for (run_idx, run) in fleet.runs.iter().enumerate() {
            for (q, query) in QUERIES.iter().enumerate() {
                let mode = &modes(run)[q % 4];
                let started = Instant::now();
                let got = fleet.routed(&mut client, run_idx, query, mode);
                assert!(
                    started.elapsed() < Duration::from_secs(5),
                    "failover latency unbounded with backend {victim} down"
                );
                assert_eq!(
                    got,
                    fleet.expected(run_idx, query, mode),
                    "run {run_idx} query {query:?} diverged with backend {victim} down"
                );
            }
        }
    }
}

/// A backend that truncates responses mid-frame — including inside a
/// chunked stream — is failed over transparently; once the fault is
/// lifted, the half-open probe readmits it.
#[test]
fn mid_frame_truncation_fails_over_byte_identically() {
    let fleet = Fleet::start("truncate", true, true);
    let proxy = fleet.proxy.as_ref().unwrap();
    // runs[0]'s ring primary is backend 0, so the first attempt goes
    // through the proxy. AllPairsFull over chunk_entries=8 streams,
    // so cuts at different offsets land mid-header and mid-chunk.
    let mode = WireMode::AllPairsFull;
    let expected = fleet.expected(0, QUERIES[0], &mode);
    let mut client = fleet.client();
    for cut in [5usize, 16, 64, 256, 1024] {
        proxy.set_mode(FaultMode::None);
        std::thread::sleep(Duration::from_millis(200));
        proxy.set_mode(FaultMode::TruncateResponse { after: cut });
        let started = Instant::now();
        let got = fleet.routed(&mut client, 0, QUERIES[0], &mode);
        assert_eq!(got, expected, "diverged with responses cut at {cut} bytes");
        assert!(started.elapsed() < Duration::from_secs(5));
    }
    // Recovery: lift the fault, let the prober readmit backend 0, and
    // the fleet still answers (now again through the primary).
    proxy.set_mode(FaultMode::None);
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(fleet.routed(&mut client, 0, QUERIES[0], &mode), expected);
}

/// A backend that accepts a request and then stalls mid-response costs
/// one per-attempt deadline, not a hang: the router cuts it off and
/// the replica answers.
#[test]
fn a_stalled_backend_costs_one_deadline_not_a_hang() {
    let fleet = Fleet::start("stall", true, true);
    let proxy = fleet.proxy.as_ref().unwrap();
    let mode = WireMode::AllPairsFull;
    let expected = fleet.expected(0, QUERIES[0], &mode);
    let mut client = fleet.client();
    proxy.set_mode(FaultMode::Stall { after: 16 });
    let started = Instant::now();
    let got = fleet.routed(&mut client, 0, QUERIES[0], &mode);
    let elapsed = started.elapsed();
    assert_eq!(got, expected, "diverged with a stalled backend");
    // One stalled attempt (≤ the 700ms per-attempt deadline) plus the
    // healthy replica; generous slack for a loaded test machine.
    assert!(
        elapsed < Duration::from_secs(5),
        "stall was not cut off: {elapsed:?}"
    );
    proxy.set_mode(FaultMode::None);
}

/// Catalog-epoch divergence: a run pushed to one backend only moves
/// that backend's epoch; replicas that don't hold it yet refuse with
/// the stale-replica error, the syncer notices the epoch change and
/// re-replicates, and the fleet then survives losing the donor.
#[test]
fn epoch_divergence_resyncs_and_stale_replicas_refuse() {
    let fleet = Fleet::start("epoch", false, true);
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    // A run nobody holds yet: a target size the fixture scan never
    // uses, double-checked against every fixture fingerprint (same
    // target sizes can saturate to structurally identical runs).
    let fresh = RunBuilder::new(&spec)
        .seed(999)
        .target_edges(100)
        .build()
        .unwrap();
    let (hi, lo) = fresh.fingerprint();
    assert!(
        fleet.runs.iter().all(|r| r.fingerprint() != (hi, lo)),
        "the fresh run must be new to the fleet"
    );
    let donor = 2usize;
    let epoch_before: Vec<u64> = fleet
        .backends
        .iter()
        .map(|&addr| connect(addr).stats().unwrap().store_epoch)
        .collect();
    let (_, deduplicated, epoch) = connect(fleet.backends[donor])
        .push_run(fresh.clone())
        .unwrap();
    assert!(!deduplicated);
    assert!(epoch > epoch_before[donor], "a push must move the epoch");
    // A replica that does not hold the run refuses it as stale rather
    // than answering wrong.
    let stale = (donor + 1) % BACKENDS;
    match connect(fleet.backends[stale])
        .request(&WireRequest::Query(QuerySpec {
            query: QUERIES[0].to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Fingerprint(hi, lo),
            mode: WireMode::EntryExit,
        }))
        .unwrap()
    {
        WireResponse::Error { kind, message } => {
            assert_eq!(kind, "invalid");
            assert!(
                message.contains("no stored run has fingerprint"),
                "{message}"
            );
        }
        other => panic!("expected a stale-replica refusal, got {other:?}"),
    }
    // The syncer spots the divergent epoch and re-replicates; after
    // convergence the donor itself is expendable.
    let ring = HashRing::new(BACKENDS);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let placed = ring.replicas_for(hi, lo, REPLICATION).into_iter().all(|b| {
            connect(fleet.backends[b])
                .runs()
                .unwrap()
                .iter()
                .any(|info| (info.fp_hi, info.fp_lo) == (hi, lo))
        });
        if placed {
            break;
        }
        assert!(Instant::now() < deadline, "the epoch change never synced");
        std::thread::sleep(Duration::from_millis(50));
    }
    fleet.backend_handles[donor].shutdown();
    let prepared = fleet.referee.prepare(QUERIES[0]).unwrap();
    let request = WireMode::EntryExit.to_request(&fresh).unwrap();
    let expected = rpq_store::codec::to_bytes(&WireResult::from_result(
        &fleet.referee.evaluate(&prepared, &fresh, &request).result,
    ));
    let outcome = fleet
        .client()
        .query(QuerySpec {
            query: QUERIES[0].to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Fingerprint(hi, lo),
            mode: WireMode::EntryExit,
        })
        .unwrap();
    assert_eq!(rpq_store::codec::to_bytes(&outcome.result), expected);
}

/// Positional addressing goes through the merged fleet inventory:
/// `ListRuns` is the fingerprint-sorted union of all backends, and
/// `Index(i)` answers exactly like the fingerprint it denotes.
#[test]
fn positional_addressing_follows_the_merged_inventory() {
    let fleet = Fleet::start("positional", false, true);
    let mut client = fleet.client();
    let inventory = client.runs().unwrap();
    assert_eq!(inventory.len(), fleet.runs.len());
    for (i, info) in inventory.iter().enumerate() {
        assert_eq!(info.id, i as u64, "inventory ids must be positional");
        if i > 0 {
            assert!(
                (inventory[i - 1].fp_hi, inventory[i - 1].fp_lo) < (info.fp_hi, info.fp_lo),
                "inventory must be fingerprint-sorted"
            );
        }
        let run_idx = fleet
            .runs
            .iter()
            .position(|r| r.fingerprint() == (info.fp_hi, info.fp_lo))
            .unwrap();
        let by_index = client
            .query(QuerySpec {
                query: QUERIES[0].to_owned(),
                policy: String::new(),
                strategy: String::new(),
                stages: false,
                run: RunAddr::Index(i as u64),
                mode: WireMode::AllPairsFull,
            })
            .unwrap();
        assert_eq!(
            rpq_store::codec::to_bytes(&by_index.result),
            fleet.expected(run_idx, QUERIES[0], &WireMode::AllPairsFull),
            "positional and fingerprint addressing diverged at index {i}"
        );
    }
    // Out-of-range positions are a typed error, not a hang or crash.
    match client
        .request(&WireRequest::Query(QuerySpec {
            query: QUERIES[0].to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(99),
            mode: WireMode::EntryExit,
        }))
        .unwrap()
    {
        WireResponse::Error { kind, .. } => assert_eq!(kind, "invalid"),
        other => panic!("expected an error, got {other:?}"),
    }
}

/// When *every* replica of a run is gone the router degrades to a
/// bounded `Unavailable` refusal — and stays alive: pings, stats and
/// the next query still get responses.
#[test]
fn losing_all_replicas_is_a_bounded_unavailable_refusal() {
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let run = RunBuilder::new(&spec)
        .seed(7)
        .target_edges(60)
        .build()
        .unwrap();
    let store = RunStore::create(temp_dir("unavailable_b0"), Arc::clone(&spec)).unwrap();
    store.ingest(&run).unwrap();
    let server = Server::bind(store, &ServeConfig::default()).unwrap();
    let backend = server.local_addr().unwrap();
    let backend_handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run(None));
    let router = Router::bind(&RouterConfig {
        backends: vec![backend],
        replication: 1,
        workers: 1,
        deadline: Duration::from_millis(500),
        retry: RetryPolicy::fixed(Duration::from_millis(5), Duration::from_millis(20)),
        sync_interval: None,
        ..RouterConfig::default()
    })
    .unwrap();
    let router_addr = router.local_addr().unwrap();
    let router_handle = router.shutdown_handle();
    std::thread::spawn(move || router.run(None));

    let (hi, lo) = run.fingerprint();
    let query = |client: &mut ServeClient| {
        client.request(&WireRequest::Query(QuerySpec {
            query: "_* e _*".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Fingerprint(hi, lo),
            mode: WireMode::EntryExit,
        }))
    };
    let mut client = connect(router_addr);
    // Sanity: the single-backend fleet answers while it is up.
    match query(&mut client).unwrap() {
        WireResponse::Outcome(_) | WireResponse::OutcomeStream(_) => {}
        other => panic!("expected an answer, got {other:?}"),
    }
    backend_handle.shutdown();
    serving.join().unwrap();

    let started = Instant::now();
    match query(&mut client).unwrap() {
        WireResponse::Unavailable { message } => {
            assert!(message.contains("no replica answered"), "{message}")
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a dead fleet must refuse quickly"
    );
    // The router itself is alive and typed about the degradation.
    client.ping().unwrap();
    match client.request(&WireRequest::ListRuns).unwrap() {
        WireResponse::Unavailable { .. } => {}
        other => panic!("expected Unavailable runs, got {other:?}"),
    }
    match client.request(&WireRequest::Stats).unwrap() {
        WireResponse::Unavailable { .. } => {}
        other => panic!("expected Unavailable stats, got {other:?}"),
    }
    // Non-query verbs are rejected at the front door, dead fleet or not.
    match client
        .request(&WireRequest::Subscribe(QuerySpec {
            query: "_* e _*".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Fingerprint(hi, lo),
            mode: WireMode::EntryExit,
        }))
        .unwrap()
    {
        WireResponse::Error { kind, message } => {
            assert_eq!(kind, "invalid");
            assert!(message.contains("query traffic only"), "{message}");
        }
        other => panic!("expected a verb refusal, got {other:?}"),
    }
    router_handle.shutdown();
}

/// Disk corruption of warm artifacts is a correctness no-op: the
/// store's decode-or-rebuild fallback regenerates them, and a server
/// over the scribbled store answers byte-identically.
#[test]
fn corrupted_artifacts_rebuild_instead_of_corrupting_answers() {
    let dir = temp_dir("corrupt");
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    let run = RunBuilder::new(&spec)
        .seed(11)
        .target_edges(70)
        .build()
        .unwrap();
    store.ingest(&run).unwrap();
    // Warm once so the tag-index/CSR artifacts exist on disk.
    let server = Server::bind(store, &ServeConfig::default()).unwrap();
    server.warm().unwrap();
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run(None));
    handle.shutdown();
    serving.join().unwrap();

    assert!(corrupt_artifacts(&dir).unwrap() > 0, "nothing to corrupt");

    let referee = Session::new(Arc::clone(&spec));
    let prepared = referee.prepare("_* e _*").unwrap();
    let request = WireMode::AllPairsFull.to_request(&run).unwrap();
    let expected = rpq_store::codec::to_bytes(&WireResult::from_result(
        &referee.evaluate(&prepared, &run, &request).result,
    ));
    let reopened = Server::bind(RunStore::open(&dir).unwrap(), &ServeConfig::default()).unwrap();
    reopened.warm().unwrap();
    let addr = reopened.local_addr().unwrap();
    std::thread::spawn(move || reopened.run(None));
    let outcome = connect(addr)
        .query(QuerySpec {
            query: "_* e _*".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(0),
            mode: WireMode::AllPairsFull,
        })
        .unwrap();
    assert_eq!(rpq_store::codec::to_bytes(&outcome.result), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One long-lived faulted fleet for the property: built once, queried
/// under a randomized schedule of proxy faults.
fn shared_fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(|| Fleet::start("shared", true, true))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Under a randomized schedule of injected faults on one backend —
    /// none, refused connections, responses truncated at a random byte
    /// offset — every (query, run, mode) routed through the fleet is
    /// byte-identical to direct in-process evaluation.
    #[test]
    fn routed_answers_match_direct_evaluation_under_faults(
        query_idx in 0..QUERIES.len(),
        run_idx in 0..(BACKENDS + 1),
        mode_sel in 0..4usize,
        fault_sel in 0..3u32,
        cut in 5..600usize,
    ) {
        let fleet = shared_fleet();
        let proxy = fleet.proxy.as_ref().unwrap();
        proxy.set_mode(match fault_sel {
            0 => FaultMode::None,
            1 => FaultMode::Refuse,
            _ => FaultMode::TruncateResponse { after: cut },
        });
        let run = &fleet.runs[run_idx];
        let mode = &modes(run)[mode_sel];
        let query = QUERIES[query_idx];
        let mut client = fleet.client();
        let got = fleet.routed(&mut client, run_idx, query, mode);
        proxy.set_mode(FaultMode::None);
        prop_assert_eq!(got, fleet.expected(run_idx, query, mode));
    }
}
