//! End-to-end smoke of an operated fleet, through the `rpq` binary:
//! three served stores, a router in front, replication converging on
//! its own, every request verb through the front door, a `kill -9`'d
//! backend with a query in flight, and a SIGTERM drain with exit 0.

#![cfg(unix)]

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn target_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
}

/// Locate (or, in isolation, build) the `rpq` binary — same fallback
/// ladder as the serve crate's CLI smoke.
fn rpq_binary() -> PathBuf {
    let target = target_dir();
    let candidates = [target.join("debug/rpq"), target.join("release/rpq")];
    let newest = candidates
        .iter()
        .filter(|p| p.exists())
        .max_by_key(|p| p.metadata().and_then(|m| m.modified()).ok());
    if let Some(path) = newest {
        return path.clone();
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let status = Command::new(cargo)
        .args(["build", "--bin", "rpq"])
        .status()
        .expect("spawn cargo build --bin rpq");
    assert!(status.success(), "cannot build the rpq binary");
    target.join("debug/rpq")
}

fn run_ok(bin: &PathBuf, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin:?} {args:?}: {e}"));
    assert!(
        out.status.success(),
        "rpq {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Kill the child on drop so a failing assertion can't leak a process.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Scrape the `listening on HOST:PORT` banner off a spawned server's
/// or router's stdout.
fn scrape_addr(child: &mut Child) -> (String, BufReader<std::process::ChildStdout>) {
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read announce line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {line}"))
        .to_owned();
    (addr, reader)
}

/// Fingerprints listed by `rpq request runs` against one address.
fn fingerprints(bin: &PathBuf, addr: &str) -> BTreeSet<String> {
    run_ok(bin, &["request", "runs", "--addr", addr])
        .lines()
        .filter_map(|line| {
            line.split("fp ")
                .nth(1)
                .and_then(|rest| rest.split_whitespace().next())
                .map(str::to_owned)
        })
        .collect()
}

fn wait_exit(child: &mut Child, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => return status,
            None if Instant::now() > deadline => panic!("{what} never exited"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn fleet_survives_a_kill_dash_nine_and_drains_on_sigterm() {
    let bin = rpq_binary();
    let dir = std::env::temp_dir()
        .join("rpq_fleet_smoke")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");

    // 1. Three stores, one distinct run each (distinct sizes so the
    // structural fingerprints cannot collide).
    let mut backends = Vec::new();
    let mut readers = Vec::new();
    for b in 0..3usize {
        let store = dir.join(format!("store{b}"));
        let store = store.to_str().expect("utf-8 path");
        let edges = format!("{}", 70 + 20 * b);
        let seed = format!("{}", b + 1);
        run_ok(
            &bin,
            &[
                "store", "fig2", "--dir", store, "--ingest", "1", "--edges", &edges, "--seed",
                &seed,
            ],
        );
        let mut child = ChildGuard(
            Command::new(&bin)
                .args([
                    "serve",
                    "fig2",
                    "--store",
                    store,
                    "--addr",
                    "127.0.0.1:0",
                    "--workers",
                    "2",
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn rpq serve"),
        );
        let (addr, reader) = scrape_addr(&mut child.0);
        backends.push((addr, child));
        readers.push(reader);
    }

    // 2. The router in front, replication 2, fast probe/sync cadences.
    let mut router_args = vec![
        "router".to_owned(),
        "--addr".to_owned(),
        "127.0.0.1:0".to_owned(),
        "--replicas".to_owned(),
        "2".to_owned(),
        "--workers".to_owned(),
        "2".to_owned(),
        "--deadline-ms".to_owned(),
        "1000".to_owned(),
        "--probe-ms".to_owned(),
        "50".to_owned(),
        "--sync-ms".to_owned(),
        "50".to_owned(),
        "--cooldown-ms".to_owned(),
        "200".to_owned(),
        "--metrics-addr".to_owned(),
        "127.0.0.1:0".to_owned(),
    ];
    for (addr, _) in &backends {
        router_args.push("--backend".to_owned());
        router_args.push(addr.clone());
    }
    let mut router = ChildGuard(
        Command::new(&bin)
            .args(&router_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn rpq router"),
    );
    let (front, mut router_out) = scrape_addr(&mut router.0);
    let front = front.as_str();
    let mut line = String::new();
    router_out
        .read_line(&mut line)
        .expect("read metrics banner");
    let router_metrics_addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no metrics address in banner: {line}"))
        .to_owned();

    // 3. The merged inventory shows all three runs; wait until the
    // syncer has placed every run on at least two backends (any single
    // backend is then expendable).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut holders: BTreeMap<String, usize> = BTreeMap::new();
        for (addr, _) in &backends {
            for fp in fingerprints(&bin, addr) {
                *holders.entry(fp).or_default() += 1;
            }
        }
        if holders.len() == 3 && holders.values().all(|&n| n >= 2) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication never converged: {holders:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(fingerprints(&bin, front).len(), 3, "merged inventory");

    // 4. Every request verb through the front door.
    assert!(run_ok(&bin, &["request", "ping", "--addr", front]).contains("pong"));
    assert!(run_ok(&bin, &["request", "runs", "--addr", front]).contains("3 stored run(s)"));
    // Fleet stats sum the backends, so the run count is replicas
    // held fleet-wide (≥ 2 per run after sync), not distinct runs.
    let stats = run_ok(&bin, &["request", "stats", "--addr", front]);
    assert!(stats.contains("run(s) stored"), "{stats}");
    assert!(!stats.contains(" 0 run(s) stored"), "{stats}");
    for run in ["0", "1", "2"] {
        let out = run_ok(
            &bin,
            &[
                "request", "query", "_* e _*", "--addr", front, "--index", run,
            ],
        );
        assert!(out.contains("verdict:"), "{out}");
    }
    let out = run_ok(
        &bin,
        &[
            "request",
            "query",
            "_*",
            "--addr",
            front,
            "--mode",
            "all-pairs",
        ],
    );
    assert!(out.contains("matches:"), "{out}");
    let out = run_ok(
        &bin,
        &[
            "request",
            "query",
            "_*",
            "--addr",
            front,
            "--mode",
            "reachable",
            "--from",
            "0",
        ],
    );
    assert!(out.contains("reachable:"), "{out}");

    // 4.5. One fleet-wide observability scrape through the front door:
    // router counters, per-backend health gauges, and the backends'
    // own request/latency/store families merged into one snapshot.
    let fleet = run_ok(&bin, &["request", "metrics", "--addr", front, "--text"]);
    assert!(fleet.contains("rpq_router_requests_total"), "{fleet}");
    assert!(fleet.contains("rpq_router_request_micros"), "{fleet}");
    assert!(
        fleet.contains("rpq_router_backend_healthy{backend="),
        "{fleet}"
    );
    assert!(fleet.contains("rpq_router_failovers_total"), "{fleet}");
    assert!(fleet.contains("rpq_requests_total"), "{fleet}");
    assert!(fleet.contains("rpq_request_micros_count"), "{fleet}");
    assert!(fleet.contains("rpq_store_appends_total"), "{fleet}");
    assert!(fleet.contains("rpq_store_append_rebuilds_total"), "{fleet}");
    // The plaintext listener serves the same exposition.
    let mut scraped = String::new();
    std::net::TcpStream::connect(&router_metrics_addr)
        .expect("connect router metrics listener")
        .read_to_string(&mut scraped)
        .expect("read router exposition");
    assert!(scraped.contains("rpq_router_requests_total"), "{scraped}");
    assert!(
        scraped.contains("rpq_router_backend_healthy{backend="),
        "{scraped}"
    );

    // 5. kill -9 one backend with a query in flight: the in-flight
    // query and every follow-up must still answer through the fleet.
    let mut inflight = Command::new(&bin)
        .args([
            "request",
            "query",
            "_* e _* a _*",
            "--addr",
            front,
            "--mode",
            "all-pairs",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn in-flight query");
    let victim_pid = backends[1].1 .0.id().to_string();
    let status = Command::new("kill")
        .args(["-9", &victim_pid])
        .status()
        .expect("spawn kill -9");
    assert!(status.success(), "kill -9 failed");
    let exit = wait_exit(&mut inflight, "in-flight query");
    assert!(exit.success(), "in-flight query failed: {exit:?}");
    wait_exit(&mut backends[1].1 .0, "killed backend");

    for run in ["0", "1", "2"] {
        let out = run_ok(
            &bin,
            &[
                "request", "query", "_* e _*", "--addr", front, "--index", run,
            ],
        );
        assert!(
            out.contains("verdict:"),
            "backend loss broke run {run}: {out}"
        );
    }
    assert!(run_ok(&bin, &["request", "runs", "--addr", front]).contains("3 stored run(s)"));

    // 5.5. The fleet scrape reflects the loss: the victim's health
    // gauge drops to 0 once the prober notices, and the surviving
    // backends' counters still merge.
    let unhealthy = format!(
        "rpq_router_backend_healthy{{backend=\"{}\"}} 0",
        backends[1].0
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let fleet = run_ok(&bin, &["request", "metrics", "--addr", front, "--text"]);
        if fleet.contains(&unhealthy) {
            assert!(fleet.contains("rpq_requests_total"), "{fleet}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim never marked unhealthy:\n{fleet}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // 6. SIGTERM → drain → exit 0 with the routing report.
    let status = Command::new("kill")
        .args(["-TERM", &router.0.id().to_string()])
        .status()
        .expect("spawn kill -TERM");
    assert!(status.success(), "kill -TERM failed");
    let exit = wait_exit(&mut router.0, "router on SIGTERM");
    assert!(exit.success(), "router exited {exit:?} on SIGTERM");
    let mut rest = String::new();
    router_out.read_to_string(&mut rest).expect("drain router");
    assert!(rest.contains("shutdown: routed"), "missing report: {rest}");

    let _ = std::fs::remove_dir_all(&dir);
}
