//! Decode-robustness fuzz for the wire protocol: arbitrary, truncated
//! and bit-flipped frames fed to `rpq_serve::protocol::read_message`
//! must fail cleanly — never panic, never allocate past [`MAX_FRAME`].
//!
//! Seeded from valid frames of every request and response shape, then
//! mutated three ways (random buffers, strict prefixes, single bit
//! flips) — the transport-level counterpart of the store's
//! `codec_fuzz` suite (the payload bytes reuse that codec).

use proptest::prelude::*;
use rpq_serve::protocol::{
    encode_frame, read_message, QuerySpec, RunAddr, WireMode, WireRequest, WireResponse,
    WireStatsReply, MAGIC, MAX_FRAME, VERSION,
};

/// One valid frame per protocol shape.
fn seed_frames() -> Vec<Vec<u8>> {
    vec![
        encode_frame(&WireRequest::Ping).unwrap(),
        encode_frame(&WireRequest::Stats).unwrap(),
        encode_frame(&WireRequest::ListRuns).unwrap(),
        encode_frame(&WireRequest::Shutdown).unwrap(),
        encode_frame(&WireRequest::Query(QuerySpec {
            query: "_* a _*".to_owned(),
            policy: "cost".to_owned(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Fingerprint(0xdead, 0xbeef),
            mode: WireMode::AllPairs(vec![0, 1, 2], vec![2, 1]),
        }))
        .unwrap(),
        encode_frame(&WireResponse::Pong).unwrap(),
        encode_frame(&WireResponse::Overloaded { queue: 64 }).unwrap(),
        encode_frame(&WireResponse::Stats(WireStatsReply {
            requests: 9,
            closures_scc: 3,
            ..WireStatsReply::default()
        }))
        .unwrap(),
        encode_frame(&WireResponse::Error {
            kind: "parse".to_owned(),
            message: "unbalanced".to_owned(),
        })
        .unwrap(),
    ]
}

/// Feed `bytes` to both decoders; must return without panicking.
/// Reports whether either decoded a message.
fn decode_both(bytes: &[u8]) -> bool {
    let req = read_message::<WireRequest>(&mut &bytes[..]);
    let resp = read_message::<WireResponse>(&mut &bytes[..]);
    matches!(req, Ok(Some(_))) || matches!(resp, Ok(Some(_)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_buffers_error_cleanly(bytes in prop::collection::vec(0u8..=255, 0..120)) {
        // Empty input is a clean end-of-stream; anything that does not
        // open with the exact magic + version must be an error.
        if bytes.is_empty() {
            prop_assert!(read_message::<WireRequest>(&mut &bytes[..]).unwrap().is_none());
        } else if bytes.len() < 9 || bytes[..4] != MAGIC || bytes[4] != VERSION {
            prop_assert!(read_message::<WireRequest>(&mut &bytes[..]).is_err());
            prop_assert!(read_message::<WireResponse>(&mut &bytes[..]).is_err());
        } else {
            // Well-formed header, random length + payload: no panic.
            decode_both(&bytes);
        }
    }

    #[test]
    fn truncations_of_valid_frames_error(
        frame_index in 0usize..9,
        cut_seed in 0u64..10_000,
    ) {
        let frames = seed_frames();
        let frame = &frames[frame_index % frames.len()];
        // Every strict non-empty prefix ends inside the header or
        // inside the announced payload: both are hard errors (a stream
        // may only end cleanly *between* frames).
        let cut = 1 + (cut_seed as usize) % (frame.len() - 1);
        let prefix = &frame[..cut];
        prop_assert!(read_message::<WireRequest>(&mut &prefix[..]).is_err(), "cut {cut}");
        prop_assert!(read_message::<WireResponse>(&mut &prefix[..]).is_err(), "cut {cut}");
    }

    #[test]
    fn bit_flips_never_panic(
        frame_index in 0usize..9,
        flip_seed in 0u64..100_000,
    ) {
        let frames = seed_frames();
        let mut frame = frames[frame_index % frames.len()].clone();
        let bit = (flip_seed as usize) % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        // A flip in the length prefix usually desynchronizes the frame
        // (too short → trailing bytes; too long → truncated); a flip in
        // the payload hits the codec's own guards. Either way: a clean
        // Result, never a panic, and any frame that still decodes must
        // re-encode within the cap.
        if let Ok(Some(request)) = read_message::<WireRequest>(&mut &frame[..]) {
            let re = encode_frame(&request).unwrap();
            prop_assert!(re.len() <= MAX_FRAME + 9);
        }
        decode_both(&frame);
    }

    #[test]
    fn oversized_length_prefixes_are_refused_before_allocation(
        len in (MAX_FRAME as u64 + 1)..=u32::MAX as u64,
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.extend_from_slice(&(len as u32).to_le_bytes());
        // No payload behind the prefix: the cap check must reject the
        // header before trying to read (or allocate) `len` bytes.
        let err = read_message::<WireRequest>(&mut &frame[..]).unwrap_err();
        prop_assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn in_cap_length_lies_are_errors_not_hangs(
        lied_len in 1u64..4096,
        actual in 0usize..64,
    ) {
        // The header announces `lied_len` payload bytes but only
        // `actual` follow; a reader over a finite buffer must error on
        // the truncation (or on garbage payload), never panic.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.extend_from_slice(&(lied_len as u32).to_le_bytes());
        frame.extend(std::iter::repeat_n(0xAAu8, actual));
        if (actual as u64) < lied_len {
            prop_assert!(read_message::<WireRequest>(&mut &frame[..]).is_err());
        } else {
            decode_both(&frame);
        }
    }
}
