//! The serving observability contract: every evaluated query comes
//! back with a per-stage time breakdown that stays inside the reported
//! total, the `Metrics` verb exposes the request/latency/stage
//! families, the slow-query ring captures qualifying queries with
//! their fingerprints and stage timings, the plaintext `--metrics-addr`
//! listener serves the Prometheus-style exposition, and the shutdown
//! report carries final latency quantiles.

use rpq_serve::protocol::{QuerySpec, RunAddr, WireMode, WireResult};
use rpq_serve::{ServeClient, ServeConfig, Server};
use rpq_store::RunStore;
use std::io::Read;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Stage names the serving path may report; anything else is a typo.
const STAGE_GLOSSARY: [&str; 6] = ["plan", "index", "csr", "eval", "lazy_expand", "store_load"];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_metrics_trace_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A bound server over a small fig2 store; returns its query address,
/// metrics address (if configured) and the shutdown plumbing.
fn serve(
    name: &str,
    config: &ServeConfig,
) -> (
    PathBuf,
    SocketAddr,
    Option<SocketAddr>,
    rpq_serve::ShutdownHandle,
    std::thread::JoinHandle<rpq_serve::ServeReport>,
) {
    let dir = temp_dir(name);
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    for (seed, target_edges) in [(1u64, 80usize), (2, 140)] {
        let run = rpq_labeling::RunBuilder::new(&spec)
            .seed(seed)
            .target_edges(target_edges)
            .build()
            .unwrap();
        assert!(!store.ingest(&run).unwrap().deduplicated);
    }
    let server = Server::bind(store, config).unwrap();
    server.warm().unwrap();
    let addr = server.local_addr().unwrap();
    let metrics_addr = server.metrics_local_addr();
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run(None));
    (dir, addr, metrics_addr, handle, serving)
}

fn connect(addr: SocketAddr) -> ServeClient {
    ServeClient::connect_with_retry(addr, Duration::from_secs(5)).unwrap()
}

fn spec_query(run: u64) -> QuerySpec {
    QuerySpec {
        query: "_*".to_owned(),
        policy: String::new(),
        strategy: String::new(),
        run: RunAddr::Index(run),
        stages: true,
        mode: WireMode::EntryExit,
    }
}

#[test]
fn outcomes_carry_stage_breakdowns_inside_the_reported_total() {
    let (dir, addr, _, handle, serving) = serve("stages", &ServeConfig::default());
    let mut client = connect(addr);
    for run in [0u64, 1, 0] {
        let outcome = client.query(spec_query(run)).unwrap();
        assert_eq!(outcome.result, WireResult::Bool(true));
        assert!(
            !outcome.stages.is_empty(),
            "an evaluated query must report stages"
        );
        for (name, _) in &outcome.stages {
            assert!(
                STAGE_GLOSSARY.contains(&name.as_str()),
                "unknown stage {name:?}"
            );
        }
        let sum: u64 = outcome.stages.iter().map(|&(_, us)| us).sum();
        assert!(
            sum <= outcome.micros,
            "stage self-times ({sum}µs) exceed the reported total ({}µs)",
            outcome.micros
        );
        // The evaluation stage itself is always present: no query is
        // answered without running the kernel or an index probe.
        assert!(outcome.stages.iter().any(|(n, _)| n == "eval"));
    }
    // The wire copy is opt-in: the same query without the flag ships
    // no stages (they still land in the server's histograms).
    let quiet = client
        .query(QuerySpec {
            stages: false,
            ..spec_query(0)
        })
        .unwrap();
    assert!(quiet.stages.is_empty(), "{:?}", quiet.stages);
    handle.shutdown();
    let report = serving.join().unwrap();
    assert!(report.requests >= 3);
    assert!(report.p50_us <= report.p99_us);
    assert!(
        report.p99_us > 0,
        "three timed requests imply a nonzero p99"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_verb_exposes_request_latency_and_stage_families() {
    let (dir, addr, _, handle, serving) = serve("verb", &ServeConfig::default());
    let mut client = connect(addr);
    for _ in 0..4 {
        client.query(spec_query(0)).unwrap();
    }
    let reply = client.metrics().unwrap();
    let snap = reply.to_snapshot();
    assert!(snap.counter("rpq_requests_total") >= 4);
    assert!(snap.counter("rpq_connections_accepted_total") >= 1);
    let latency = snap.histogram("rpq_request_micros").unwrap();
    assert!(latency.count >= 4);
    assert!(latency.p50() <= latency.p99());
    assert!(
        snap.histograms
            .iter()
            .any(|(name, h)| name.starts_with("rpq_stage_micros{stage=") && h.count > 0),
        "per-stage histograms must be populated"
    );
    // Store-level counters ride the same snapshot (fleet merging
    // depends on every family being in one place).
    assert!(snap.gauges.iter().any(|(name, _)| name == "rpq_store_runs"));
    let text = snap.to_text();
    assert!(text.contains("# TYPE rpq_requests_total counter"));
    assert!(text.contains("# TYPE rpq_request_micros histogram"));
    assert!(text.contains("rpq_request_micros_count"));
    handle.shutdown();
    serving.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_log_captures_qualifying_queries_with_fingerprints_and_stages() {
    let config = ServeConfig {
        slow_ms: Some(0), // every query qualifies
        ..ServeConfig::default()
    };
    let (dir, addr, _, handle, serving) = serve("slowlog", &config);
    let mut client = connect(addr);
    client.query(spec_query(1)).unwrap();
    let reply = client.metrics().unwrap();
    assert!(!reply.slow.is_empty(), "slow-ms 0 must capture every query");
    let entry = reply.slow.last().unwrap();
    assert_eq!(entry.query, "_*");
    assert_eq!(entry.fingerprint.len(), 32, "fingerprint is 32 hex digits");
    assert!(entry.fingerprint.chars().all(|c| c.is_ascii_hexdigit()));
    assert!(!entry.stages.is_empty());
    assert!(entry.total_micros >= entry.stages.iter().map(|&(_, us)| us).sum());
    handle.shutdown();
    serving.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_listener_serves_the_plaintext_exposition() {
    let config = ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    };
    let (dir, addr, metrics_addr, handle, serving) = serve("scrape", &config);
    let metrics_addr = metrics_addr.expect("metrics listener bound");
    let mut client = connect(addr);
    client.query(spec_query(0)).unwrap();
    let mut text = String::new();
    std::net::TcpStream::connect(metrics_addr)
        .unwrap()
        .read_to_string(&mut text)
        .unwrap();
    assert!(text.contains("# TYPE rpq_requests_total counter"));
    assert!(text.contains("rpq_requests_total 1"));
    assert!(text.contains("# TYPE rpq_request_micros histogram"));
    handle.shutdown();
    serving.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
