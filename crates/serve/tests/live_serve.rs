//! The live-ingestion service contract: protocol-v3 `Append` grows a
//! stored run with answers byte-identical to an in-process replay,
//! `Subscribe` pushes *delta answers only* as appends land, the idle
//! keep-alive timeout releases workers pinned by quiet connections
//! (while leaving subscribers standing), and shutdown drains a
//! connection that is mid-subscription.

use rpq_core::Session;
use rpq_labeling::{EventBatch, Run, RunBuilder};
use rpq_serve::protocol::{QuerySpec, RunAddr, WireMode, WireResult};
use rpq_serve::{ServeClient, ServeConfig, Server};
use rpq_store::RunStore;
use rpq_workloads::runs::event_stream;
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_live_serve_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A private server over a store holding the base slice of a streamed
/// run; returns everything a test needs to append and watch.
struct Live {
    dir: PathBuf,
    addr: SocketAddr,
    base: Run,
    batches: Vec<EventBatch>,
    full: Run,
    referee: Session,
}

fn live(name: &str, seed: u64, target_edges: usize, n_batches: usize, config: ServeConfig) -> Live {
    let dir = temp_dir(name);
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let full = RunBuilder::new(&spec)
        .seed(seed)
        .target_edges(target_edges)
        .build()
        .unwrap();
    let (base, batches) = event_stream(&full, n_batches).unwrap();
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    assert!(!store.ingest(&base).unwrap().deduplicated);
    let server = Server::bind(store, &config).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run(None));
    Live {
        dir,
        addr,
        base,
        batches,
        full,
        referee: Session::new(spec),
    }
}

fn connect(addr: SocketAddr) -> ServeClient {
    ServeClient::connect_with_retry(addr, Duration::from_secs(5)).unwrap()
}

/// In-process evaluation of `(query, mode)` over an arbitrary run.
fn referee(session: &Session, query: &str, run: &Run, mode: &WireMode) -> WireResult {
    let prepared = session.prepare(query).unwrap();
    let request = mode.to_request(run).unwrap();
    WireResult::from_result(&session.evaluate(&prepared, run, &request).result)
}

fn pairs_of(result: &WireResult) -> BTreeSet<(u32, u32)> {
    match result {
        WireResult::Pairs(pairs) => pairs.iter().copied().collect(),
        other => panic!("expected pairs, got {other:?}"),
    }
}

#[test]
fn append_over_the_wire_matches_in_process_replay() {
    let fix = live(
        "append",
        7,
        90,
        4,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let mut client = connect(fix.addr);

    // Append every batch, alternating positional and fingerprint
    // addressing (each receipt carries the *grown* fingerprint — the
    // run's stable address changes under it on every append).
    let mut replayed = fix.base.clone();
    let mut addr = RunAddr::Index(0);
    for (i, batch) in fix.batches.iter().enumerate() {
        let receipt = client.append(addr, batch.clone()).unwrap();
        replayed = replayed.apply_events(batch).unwrap();
        assert_eq!(receipt.seq, i as u64 + 1);
        // Ingest bumped the catalog epoch to 1; every append bumps on.
        assert_eq!(receipt.epoch, i as u64 + 2);
        assert_eq!(receipt.new_nodes, batch.nodes.len() as u64);
        assert_eq!(receipt.n_nodes, replayed.n_nodes() as u64);
        assert_eq!(receipt.n_edges, replayed.n_edges() as u64);
        let (hi, lo) = replayed.fingerprint();
        assert_eq!((receipt.fp_hi, receipt.fp_lo), (hi, lo));
        addr = RunAddr::Fingerprint(receipt.fp_hi, receipt.fp_lo);
    }
    assert_eq!(replayed.n_nodes(), fix.full.n_nodes());

    // Queries over the grown run are byte-identical to in-process
    // evaluation over the replay.
    for query in ["_* e _*", "a+", "_*"] {
        let remote = client
            .query(QuerySpec {
                query: query.to_owned(),
                policy: String::new(),
                strategy: String::new(),
                stages: false,
                run: RunAddr::Index(0),
                mode: WireMode::AllPairsFull,
            })
            .unwrap();
        let local = referee(&fix.referee, query, &replayed, &WireMode::AllPairsFull);
        assert_eq!(
            rpq_store::codec::to_bytes(&remote.result),
            rpq_store::codec::to_bytes(&local),
            "{query}: wire result diverges from in-process replay"
        );
    }

    // An empty batch is a clean no-op, not a mutation.
    let before = client.stats().unwrap();
    let noop = client
        .append(RunAddr::Index(0), EventBatch::default())
        .unwrap();
    assert_eq!(noop.seq, fix.batches.len() as u64);
    assert_eq!(noop.epoch, before.store_epoch);
    let after = client.stats().unwrap();
    assert_eq!(after.store_epoch, before.store_epoch);
    assert_eq!(after.appends, fix.batches.len() as u64);

    // A bad address is an error response; the connection survives.
    assert!(client
        .append(RunAddr::Index(99), EventBatch::default())
        .is_err());
    client.ping().unwrap();
    let _ = std::fs::remove_dir_all(&fix.dir);
}

#[test]
fn subscription_streams_delta_answers_only() {
    let fix = live(
        "subscribe",
        11,
        110,
        5,
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let mut watcher = connect(fix.addr);
    let (seq0, initial) = watcher
        .subscribe(QuerySpec {
            query: "_*".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(0),
            mode: WireMode::AllPairsFull,
        })
        .unwrap();
    assert_eq!(seq0, 0);
    let baseline = referee(&fix.referee, "_*", &fix.base, &WireMode::AllPairsFull);
    assert_eq!(pairs_of(&initial), pairs_of(&baseline));

    // A second client streams the batches in while the watcher stands.
    let appender_addr = fix.addr;
    let batches = fix.batches.clone();
    let appender = std::thread::spawn(move || {
        let mut client = connect(appender_addr);
        for batch in &batches {
            client.append(RunAddr::Index(0), batch.clone()).unwrap();
            std::thread::sleep(Duration::from_millis(30));
        }
    });

    // Drain pushes until the accumulated answer reaches the full run's.
    // Every pushed pair must be *new* — deltas only, no re-sends.
    let expected = pairs_of(&referee(
        &fix.referee,
        "_*",
        &fix.full,
        &WireMode::AllPairsFull,
    ));
    let mut accumulated = pairs_of(&initial);
    assert!(accumulated.len() < expected.len(), "the stream must grow");
    let mut last_seq = seq0;
    let deadline = Instant::now() + Duration::from_secs(20);
    while accumulated != expected {
        assert!(Instant::now() < deadline, "deltas never converged");
        if let Some((seq, added)) = watcher.next_delta(Duration::from_millis(500)).unwrap() {
            assert!(seq > last_seq, "push sequence must be monotone");
            last_seq = seq;
            for pair in pairs_of(&added) {
                assert!(accumulated.insert(pair), "pair {pair:?} was re-pushed");
            }
        }
    }
    appender.join().unwrap();

    // Unsubscribe returns the connection to request/response mode.
    watcher.unsubscribe().unwrap();
    watcher.ping().unwrap();
    let stats = watcher.stats().unwrap();
    assert!(stats.subscriptions >= 1);
    assert_eq!(stats.appends, fix.batches.len() as u64);
    let _ = std::fs::remove_dir_all(&fix.dir);
}

#[test]
fn oversized_deltas_stream_in_chunks_and_reassemble() {
    // Satellite regression: a pushed delta larger than the server's
    // `chunk_entries` bound goes out as a `DeltaStream` header plus
    // `Chunk` frames (mirroring the query path's `OutcomeStream`) and
    // the client reassembles it transparently — same convergence, no
    // re-sends, with single frames bounded.
    let fix = live(
        "chunked_delta",
        11,
        110,
        3,
        ServeConfig {
            workers: 4,
            chunk_entries: 4,
            ..ServeConfig::default()
        },
    );
    let mut watcher = connect(fix.addr);
    let (seq0, initial) = watcher
        .subscribe(QuerySpec {
            query: "_*".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(0),
            mode: WireMode::AllPairsFull,
        })
        .unwrap();

    let mut appender = connect(fix.addr);
    for batch in &fix.batches {
        appender.append(RunAddr::Index(0), batch.clone()).unwrap();
    }

    let expected = pairs_of(&referee(
        &fix.referee,
        "_*",
        &fix.full,
        &WireMode::AllPairsFull,
    ));
    let mut accumulated = pairs_of(&initial);
    let mut largest_delta = 0usize;
    let mut last_seq = seq0;
    let deadline = Instant::now() + Duration::from_secs(20);
    while accumulated != expected {
        assert!(Instant::now() < deadline, "chunked deltas never converged");
        if let Some((seq, added)) = watcher.next_delta(Duration::from_millis(500)).unwrap() {
            assert!(seq > last_seq, "push sequence must be monotone");
            last_seq = seq;
            let pairs = pairs_of(&added);
            largest_delta = largest_delta.max(pairs.len());
            for pair in pairs {
                assert!(accumulated.insert(pair), "pair {pair:?} was re-pushed");
            }
        }
    }
    // `_*` over all pairs grows by well over 4 entries per append on
    // this stream, so the chunked path demonstrably ran.
    assert!(
        largest_delta > 4,
        "no delta exceeded chunk_entries ({largest_delta}); the test lost its teeth"
    );
    watcher.unsubscribe().unwrap();
    watcher.ping().unwrap();
    let _ = std::fs::remove_dir_all(&fix.dir);
}

#[test]
fn verdict_subscription_fires_when_reachability_appears() {
    // The monitoring scenario: stand a verdict query up and get pushed
    // a single `Bool(true)` the moment the property becomes reachable.
    // Streamed slices place every edge in the earliest batch where both
    // endpoints exist, so verdicts over *fixed* old nodes never flip —
    // the entry→exit verdict does, because the exit moves as the run
    // grows. Search a small candidate list for a query that is false on
    // the base slice and true on the full run (deterministic: the run
    // generator is seeded).
    let fix = live(
        "verdict",
        13,
        120,
        3,
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let candidates = ["_* e _*", "_* e", "_* a", "_* e _* e _*", "a _*", "e _*"];
    let flipping = candidates.iter().copied().find(|q| {
        referee(&fix.referee, q, &fix.base, &WireMode::EntryExit) == WireResult::Bool(false)
            && referee(&fix.referee, q, &fix.full, &WireMode::EntryExit) == WireResult::Bool(true)
    });
    let query = flipping.expect("no candidate query flips on this stream; re-seed the fixture");

    let mut watcher = connect(fix.addr);
    let (_, initial) = watcher
        .subscribe(QuerySpec {
            query: query.to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(0),
            mode: WireMode::EntryExit,
        })
        .unwrap();
    assert_eq!(initial, WireResult::Bool(false));

    let mut appender = connect(fix.addr);
    for batch in &fix.batches {
        appender.append(RunAddr::Index(0), batch.clone()).unwrap();
    }

    // Exactly one push: the false→true flip. (A verdict that is already
    // true never re-pushes — monotone growth cannot un-derive it.)
    let deadline = Instant::now() + Duration::from_secs(20);
    let flipped = loop {
        assert!(Instant::now() < deadline, "the verdict flip never arrived");
        if let Some((_, added)) = watcher.next_delta(Duration::from_millis(500)).unwrap() {
            break added;
        }
    };
    assert_eq!(flipped, WireResult::Bool(true));
    assert!(watcher
        .next_delta(Duration::from_millis(400))
        .unwrap()
        .is_none());
    watcher.unsubscribe().unwrap();
    let _ = std::fs::remove_dir_all(&fix.dir);
}

#[test]
fn idle_keepalive_closes_quiet_connections_but_not_subscribers() {
    // Satellite regression: a connection that goes quiet between
    // requests is closed after the configured idle bound (releasing its
    // worker) — a standing subscription is quiet by design and must
    // survive the same silence.
    let fix = live(
        "idle",
        7,
        90,
        2,
        ServeConfig {
            workers: 2,
            idle_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    );

    // A quiet request/response connection is reaped...
    let mut quiet = connect(fix.addr);
    quiet.ping().unwrap();
    std::thread::sleep(Duration::from_millis(900));
    assert!(
        quiet.ping().is_err(),
        "the idle connection should have been closed"
    );

    // ...while a subscriber silent for the same stretch still stands
    // and receives its delta.
    let mut watcher = connect(fix.addr);
    watcher
        .subscribe(QuerySpec {
            query: "_*".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(0),
            mode: WireMode::AllPairsFull,
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(900));
    let mut appender = connect(fix.addr);
    appender
        .append(RunAddr::Index(0), fix.batches[0].clone())
        .unwrap();
    let pushed = watcher.next_delta(Duration::from_secs(10)).unwrap();
    assert!(pushed.is_some(), "the subscriber was reaped while standing");
    watcher.unsubscribe().unwrap();
    let _ = std::fs::remove_dir_all(&fix.dir);
}

#[test]
fn shutdown_drains_an_active_subscriber() {
    // The SIGTERM path must not hang on a worker that is inside a
    // subscription push loop rather than a read.
    use std::sync::atomic::{AtomicBool, Ordering};
    let dir = temp_dir("drain_subscriber");
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let full = RunBuilder::new(&spec)
        .seed(7)
        .target_edges(90)
        .build()
        .unwrap();
    let (base, _) = event_stream(&full, 2).unwrap();
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    store.ingest(&base).unwrap();
    let server = Server::bind(store, &ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    static FLAG: AtomicBool = AtomicBool::new(false);
    let serving = std::thread::spawn(move || server.run(Some(&FLAG)));

    let mut watcher = connect(addr);
    watcher
        .subscribe(QuerySpec {
            query: "_*".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(0),
            mode: WireMode::EntryExit,
        })
        .unwrap();
    FLAG.store(true, Ordering::Relaxed);
    // run() must return despite the standing subscription.
    let report = serving.join().unwrap();
    assert!(report.requests >= 1);
    FLAG.store(false, Ordering::Relaxed);
    let _ = std::fs::remove_dir_all(&dir);
}
