//! End-to-end smoke of the `rpq` binary's serve/request surface — the
//! CI-only loopback smoke job, promoted into the test suite so plain
//! `cargo test --workspace` covers it locally:
//!
//! 1. build a store with the CLI,
//! 2. serve it on an ephemeral port,
//! 3. run every request verb against the live server,
//! 4. SIGTERM the server and assert a clean exit-0 drain with the
//!    final report on stdout.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The workspace target directory (this file lives at
/// `crates/serve/tests/`, two levels below the root).
fn target_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
}

/// Locate the built `rpq` binary. `cargo test --workspace` compiles
/// every workspace target (including the facade's bin) before running
/// any test, so the current profile's copy normally exists; running
/// this suite in isolation (`cargo test -p rpq-serve`) falls back to a
/// release build or, as a last resort, builds the binary.
fn rpq_binary() -> PathBuf {
    let target = target_dir();
    let candidates = [target.join("debug/rpq"), target.join("release/rpq")];
    // Prefer the freshest existing build.
    let newest = candidates
        .iter()
        .filter(|p| p.exists())
        .max_by_key(|p| p.metadata().and_then(|m| m.modified()).ok());
    if let Some(path) = newest {
        return path.clone();
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let status = Command::new(cargo)
        .args(["build", "--bin", "rpq"])
        .status()
        .expect("spawn cargo build --bin rpq");
    assert!(status.success(), "cannot build the rpq binary");
    target.join("debug/rpq")
}

fn run_ok(bin: &PathBuf, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin:?} {args:?}: {e}"));
    assert!(
        out.status.success(),
        "rpq {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Kill the child on drop so a failing assertion can't leak a server.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The live-provenance loop, end to end through the binary: a streamed
/// simulation, an offline CLI append (`rpq store --open`), a served
/// store, a standing `rpq watch` receiving a pushed delta from an
/// over-the-wire `rpq request append`, and finally a SIGTERM drain
/// with another subscriber still active.
#[test]
fn streaming_append_watch_and_sigterm_drain() {
    let bin = rpq_binary();
    let dir = std::env::temp_dir()
        .join("rpq_cli_smoke_live")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    let base = dir.join("run.json");
    let base = base.to_str().expect("utf-8 path");
    let store = dir.join("store");
    let store = store.to_str().expect("utf-8 path");

    // 1. Streamed simulation: base run + two replayable event batches.
    let out = run_ok(
        &bin,
        &[
            "simulate", "fig2", "--edges", "90", "--seed", "11", "--out", base, "--stream", "2",
        ],
    );
    assert!(out.contains("streamed: base"), "{out}");
    let events_1 = base.replace(".json", ".events-1.json");
    let events_2 = base.replace(".json", ".events-2.json");

    // 2. Ingest the base, then append batch 1 offline through the
    // live path (indexes maintained, epoch bumped on disk).
    run_ok(&bin, &["store", "fig2", "--dir", store, "--add", base]);
    let out = run_ok(
        &bin,
        &[
            "store", "fig2", "--dir", store, "--open", "r0", "--events", &events_1,
        ],
    );
    assert!(out.contains("appended"), "{out}");

    // 3. Serve the grown store.
    let mut server = ChildGuard(
        Command::new(&bin)
            .args([
                "serve",
                "fig2",
                "--store",
                store,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn rpq serve"),
    );
    let stdout = server.0.stdout.take().expect("piped stdout");
    let mut server_out = BufReader::new(stdout);
    let mut line = String::new();
    server_out.read_line(&mut line).expect("read announce line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in banner")
        .to_owned();
    let a = addr.as_str();

    // 4. Stand a watch up (`_*` over all pairs grows on every append,
    // so one delta is guaranteed), confirmed by its first line.
    let mut watch = ChildGuard(
        Command::new(&bin)
            .args([
                "watch",
                "_*",
                "--addr",
                a,
                "--mode",
                "all-pairs",
                "--max-deltas",
                "1",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn rpq watch"),
    );
    let watch_stdout = watch.0.stdout.take().expect("piped stdout");
    let mut watch_out = BufReader::new(watch_stdout);
    let mut line = String::new();
    watch_out.read_line(&mut line).expect("read watch banner");
    assert!(line.contains("watching"), "unexpected watch banner: {line}");

    // 5. Append batch 2 over the wire; the watch receives the pushed
    // delta and exits cleanly.
    let out = run_ok(
        &bin,
        &[
            "request", "append", "--addr", a, "--events", &events_2, "--index", "0",
        ],
    );
    assert!(out.contains("appended"), "{out}");
    let deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        match watch.0.try_wait().expect("try_wait watch") {
            Some(status) => break status,
            None if Instant::now() > deadline => panic!("watch never saw the delta"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    assert!(exit.success(), "watch exited {exit:?}");
    let mut rest = String::new();
    watch_out.read_to_string(&mut rest).expect("drain watch");
    assert!(rest.contains("delta seq"), "no delta line: {rest}");
    assert!(rest.contains("1 delta(s) received"), "{rest}");

    // 6. SIGTERM the server while another subscriber is standing: the
    // drain must still complete with exit 0.
    let mut standing = ChildGuard(
        Command::new(&bin)
            .args(["watch", "_*", "--addr", a, "--mode", "all-pairs"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn standing watch"),
    );
    let standing_stdout = standing.0.stdout.take().expect("piped stdout");
    let mut standing_out = BufReader::new(standing_stdout);
    let mut line = String::new();
    standing_out
        .read_line(&mut line)
        .expect("read watch banner");
    assert!(line.contains("watching"), "unexpected watch banner: {line}");

    let pid = server.0.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("spawn kill -TERM");
    assert!(status.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        match server.0.try_wait().expect("try_wait server") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                panic!("server ignored SIGTERM with a subscriber standing")
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    assert!(exit.success(), "server exited {exit:?} on SIGTERM");
    let mut rest = String::new();
    server_out.read_to_string(&mut rest).expect("drain server");
    assert!(rest.contains("shutdown: served"), "missing report: {rest}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_every_verb_and_sigterm_cleanly() {
    let bin = rpq_binary();
    let dir = std::env::temp_dir()
        .join("rpq_cli_smoke")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    let store = dir.join("store");
    let store = store.to_str().expect("utf-8 path");

    // 1. Build the store (artifacts materialized, warm on open).
    let out = run_ok(
        &bin,
        &[
            "store", "fig2", "--dir", store, "--ingest", "3", "--edges", "80", "--seed", "7",
        ],
    );
    assert!(out.contains("3 run(s)"), "{out}");

    // 2. Serve on an ephemeral port with the full observability plane
    // armed; scrape both announced addresses (query + metrics).
    let mut child = ChildGuard(
        Command::new(&bin)
            .args([
                "serve",
                "fig2",
                "--store",
                store,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--slow-ms",
                "0",
                "--metrics-addr",
                "127.0.0.1:0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn rpq serve"),
    );
    let stdout = child.0.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read announce line");
    assert!(line.contains("listening on"), "unexpected banner: {line}");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in banner")
        .to_owned();
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics banner");
    assert!(
        line.contains("metrics listening on"),
        "unexpected metrics banner: {line}"
    );
    let metrics_addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("metrics address in banner")
        .to_owned();

    // 3. Every request verb against the live server.
    let a = addr.as_str();
    assert!(run_ok(&bin, &["request", "ping", "--addr", a]).contains("pong"));
    let out = run_ok(&bin, &["request", "runs", "--addr", a]);
    assert!(out.contains("3 stored run(s)"), "{out}");

    // Every evaluation mode of the protocol.
    let out = run_ok(&bin, &["request", "query", "_* e _*", "--addr", a]); // entry-exit
    assert!(out.contains("verdict:"), "{out}");
    let out = run_ok(
        &bin,
        &[
            "request", "query", "_*", "--addr", a, "--from", "0", "--to", "1",
        ],
    );
    assert!(out.contains("verdict:"), "{out}");
    let out = run_ok(
        &bin,
        &["request", "query", "_*", "--addr", a, "--from", "0"],
    );
    assert!(out.contains("matches:"), "{out}"); // source-star
    let out = run_ok(&bin, &["request", "query", "_*", "--addr", a, "--to", "0"]);
    assert!(out.contains("matches:"), "{out}"); // target-star
    let out = run_ok(
        &bin,
        &["request", "query", "_*", "--addr", a, "--mode", "all-pairs"],
    );
    assert!(out.contains("matches:"), "{out}");
    let out = run_ok(
        &bin,
        &[
            "request",
            "query",
            "_*",
            "--addr",
            a,
            "--mode",
            "reachable",
            "--from",
            "0",
        ],
    );
    assert!(out.contains("reachable:"), "{out}");

    let out = run_ok(&bin, &["request", "stats", "--addr", a]);
    assert!(out.contains("3 run(s) stored"), "{out}");
    assert!(out.contains("closures:"), "{out}");
    assert!(out.contains("retries:"), "{out}");

    // 3.5. Observability: the Metrics verb (structured + text), the
    // plaintext scrape endpoint, and monotone counters under load.
    let scrape = |metrics_addr: &str| -> String {
        let mut text = String::new();
        std::net::TcpStream::connect(metrics_addr)
            .expect("connect metrics listener")
            .read_to_string(&mut text)
            .expect("read exposition");
        text
    };
    let requests_total = |text: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix("rpq_requests_total "))
            .unwrap_or_else(|| panic!("no rpq_requests_total in scrape:\n{text}"))
            .trim()
            .parse()
            .expect("counter value")
    };
    let out = run_ok(&bin, &["request", "metrics", "--addr", a]);
    assert!(out.contains("rpq_requests_total"), "{out}");
    assert!(out.contains("rpq_request_micros"), "{out}");
    assert!(out.contains("slow "), "slow-ms 0 must log queries: {out}");
    let out = run_ok(&bin, &["request", "metrics", "--addr", a, "--text"]);
    assert!(out.contains("# TYPE rpq_requests_total counter"), "{out}");
    assert!(out.contains("rpq_request_micros_count"), "{out}");
    let before = requests_total(&scrape(&metrics_addr));
    assert!(before > 0, "verbs above must have been counted");
    for _ in 0..3 {
        run_ok(&bin, &["request", "query", "_* e _*", "--addr", a]);
    }
    let after = requests_total(&scrape(&metrics_addr));
    assert!(
        after >= before + 3,
        "counter must be monotone under load ({before} -> {after})"
    );

    // 4. SIGTERM → drain → exit 0 with the final report. std::process
    // has no signal API and the workspace pulls no libc, so use the
    // platform's `kill` utility (this test is unix-gated anyway).
    let pid = child.0.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("spawn kill -TERM");
    assert!(status.success(), "kill -TERM failed");

    let deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        match child.0.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if Instant::now() > deadline => panic!("server ignored SIGTERM for 30s"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    assert!(exit.success(), "server exited {exit:?} on SIGTERM");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.contains("shutdown: served"), "missing report: {rest}");
    assert!(
        rest.contains("latency p50") && rest.contains("p99"),
        "report must carry final latency quantiles: {rest}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
