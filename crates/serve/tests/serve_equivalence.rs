//! The service contract: every protocol request type returns outcomes
//! **byte-identical** to in-process evaluation on the same store, under
//! any interleaving of concurrent clients; failures are responses, not
//! disconnects; overload is a graceful refusal; shutdown drains.
//!
//! The referee is a direct `Session` over the same runs: each sampled
//! request is evaluated through the wire *and* in-process, and the two
//! results are compared as their binary codec renderings (the same
//! bytes the protocol ships).

use proptest::prelude::*;
use rpq_core::{QueryOutcome, Session};
use rpq_labeling::{Run, RunBuilder};
use rpq_serve::protocol::{QuerySpec, RunAddr, WireMode, WireResponse, WireResult};
use rpq_serve::{ServeClient, ServeConfig, Server};
use rpq_store::RunStore;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const QUERIES: [&str; 5] = ["_* e _*", "a", "_* a _*", "a+", "_* e _* a _*"];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_serve_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    addr: SocketAddr,
    runs: Vec<Run>,
    referee: Session,
}

/// One shared warm server for the whole test binary: bound once on an
/// ephemeral port, never shut down (the test process's exit reaps it).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = temp_dir("fixture");
        let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let runs: Vec<Run> = (0..3)
            .map(|i| {
                RunBuilder::new(&spec)
                    .seed(i as u64 + 1)
                    .target_edges(60 + 25 * i)
                    .build()
                    .unwrap()
            })
            .collect();
        for run in &runs {
            assert!(!store.ingest(run).unwrap().deduplicated);
        }
        let server = Server::bind(
            store,
            &ServeConfig {
                workers: 3,
                queue: 32,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(server.warm().unwrap(), 3);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run(None));
        Fixture {
            addr,
            runs,
            referee: Session::new(spec),
        }
    })
}

fn connect(addr: SocketAddr) -> ServeClient {
    ServeClient::connect_with_retry(addr, Duration::from_secs(5)).unwrap()
}

/// In-process evaluation of the same (query, run, mode) triple.
fn referee_outcome(fix: &Fixture, query: &str, run_idx: usize, mode: &WireMode) -> QueryOutcome {
    let run = &fix.runs[run_idx];
    let prepared = fix.referee.prepare(query).unwrap();
    let request = mode.to_request(run).unwrap();
    fix.referee.evaluate(&prepared, run, &request)
}

/// The acceptance check: the wire result and the in-process result
/// must encode to identical bytes.
fn assert_byte_identical(local: &QueryOutcome, remote: &WireResult) {
    let local_wire = WireResult::from_result(&local.result);
    assert_eq!(
        rpq_store::codec::to_bytes(&local_wire),
        rpq_store::codec::to_bytes(remote),
        "wire result diverges from in-process evaluation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every request type, random queries/runs/endpoints, fingerprint
    /// and positional addressing: the server's answer is byte-identical
    /// to a direct `Session` over the same run.
    #[test]
    fn server_matches_in_process_evaluation(
        query_idx in 0..QUERIES.len(),
        run_idx in 0..3usize,
        mode_sel in 0..7u32,
        raw_u in 0..10_000u32,
        raw_v in 0..10_000u32,
        by_fingerprint in 0..2u32,
    ) {
        let fix = fixture();
        let run = &fix.runs[run_idx];
        let n = run.n_nodes() as u32;
        let (u, v) = (raw_u % n, raw_v % n);
        let all: Vec<u32> = (0..n).collect();
        let mode = match mode_sel {
            0 => WireMode::Pairwise(u, v),
            1 => WireMode::EntryExit,
            2 => WireMode::AllPairs(all.clone(), all),
            3 => WireMode::SourceStar(u),
            4 => WireMode::TargetStar(v),
            5 => WireMode::Reachable(u),
            _ => WireMode::AllPairsFull,
        };
        let addr = if by_fingerprint == 1 {
            let (hi, lo) = run.fingerprint();
            RunAddr::Fingerprint(hi, lo)
        } else {
            RunAddr::Index(run_idx as u64)
        };
        let query = QUERIES[query_idx];
        let mut client = connect(fix.addr);
        let remote = client
            .query(QuerySpec {
                query: query.to_owned(),
                policy: String::new(),
                strategy: String::new(),
                stages: false,
                run: addr,
                mode: mode.clone(),
            })
            .unwrap();
        let local = referee_outcome(fix, query, run_idx, &mode);
        assert_byte_identical(&local, &remote.result);
    }
}

#[test]
fn concurrent_clients_all_match_the_referee() {
    let fix = fixture();
    let threads = 8;
    let per_thread = 12;
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut client = connect(fix.addr);
                for i in 0..per_thread {
                    let query = QUERIES[(t + i) % QUERIES.len()];
                    let run_idx = (t * per_thread + i) % fix.runs.len();
                    let n = fix.runs[run_idx].n_nodes() as u32;
                    let mode = match i % 3 {
                        0 => WireMode::EntryExit,
                        1 => WireMode::SourceStar((i as u32 * 7) % n),
                        _ => WireMode::Pairwise((i as u32 * 3) % n, (t as u32 * 5) % n),
                    };
                    let remote = client
                        .query(QuerySpec {
                            query: query.to_owned(),
                            policy: String::new(),
                            strategy: String::new(),
                            stages: false,
                            run: RunAddr::Index(run_idx as u64),
                            mode: mode.clone(),
                        })
                        .unwrap();
                    let local = referee_outcome(fix, query, run_idx, &mode);
                    assert_byte_identical(&local, &remote.result);
                }
            });
        }
    });
}

#[test]
fn failures_are_error_responses_and_the_connection_survives() {
    let fix = fixture();
    let mut client = connect(fix.addr);
    let spec = |query: &str, run: RunAddr, mode: WireMode, policy: &str| QuerySpec {
        query: query.to_owned(),
        policy: policy.to_owned(),
        strategy: String::new(),
        run,
        stages: false,
        mode,
    };
    let cases = [
        // (request, expected error kind)
        (
            spec("(((", RunAddr::Index(0), WireMode::EntryExit, ""),
            "parse",
        ),
        (
            spec("_*", RunAddr::Fingerprint(1, 2), WireMode::EntryExit, ""),
            "invalid",
        ),
        (
            spec("_*", RunAddr::Index(99), WireMode::EntryExit, ""),
            "invalid",
        ),
        (
            spec(
                "_*",
                RunAddr::Index(0),
                WireMode::Pairwise(0, 1_000_000),
                "",
            ),
            "invalid",
        ),
        (
            spec("_*", RunAddr::Index(0), WireMode::EntryExit, "fastest"),
            "invalid",
        ),
    ];
    for (request, expected_kind) in cases {
        match client
            .request(&rpq_serve::WireRequest::Query(request))
            .unwrap()
        {
            WireResponse::Error { kind, message } => {
                assert_eq!(kind, expected_kind, "{message}");
                assert!(!message.is_empty());
            }
            other => panic!("expected an error response, got {other:?}"),
        }
        // The connection is still usable after each failure.
        client.ping().unwrap();
    }
    // Stats reflect the served traffic.
    let stats = client.stats().unwrap();
    assert!(stats.request_errors >= cases_len());
    assert!(stats.requests > stats.request_errors);
    assert_eq!(stats.store_runs, 3);
}

const fn cases_len() -> u64 {
    5
}

#[test]
fn overload_is_a_graceful_refusal_and_shutdown_drains() {
    // A private 1-worker, 1-slot server so saturation is deterministic.
    let dir = temp_dir("overload");
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    let run = RunBuilder::new(&spec)
        .seed(9)
        .target_edges(60)
        .build()
        .unwrap();
    store.ingest(&run).unwrap();
    let server = Server::bind(
        store,
        &ServeConfig {
            workers: 1,
            queue: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let serving = std::thread::spawn(move || server.run(None));

    // A occupies the only worker (the ping proves it was dequeued).
    let mut a = connect(addr);
    a.ping().unwrap();
    // B fills the one-slot waiting queue.
    let b = connect(addr);
    std::thread::sleep(Duration::from_millis(150));
    // C is refused — with a response, not a dropped socket.
    let mut c = connect(addr);
    match c.request(&rpq_serve::WireRequest::Ping) {
        Ok(WireResponse::Overloaded { queue }) => assert_eq!(queue, 1),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Releasing A lets the queued B be served.
    drop(a);
    let mut b = {
        let mut b = b;
        b.ping().unwrap();
        b
    };

    // Protocol-level shutdown acknowledges, then the server drains and
    // run() returns with truthful counters.
    b.shutdown_server().unwrap();
    let report = serving.join().unwrap();
    assert!(report.accepted >= 3);
    assert_eq!(report.overloaded, 1);
    assert!(report.requests >= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn external_flag_shutdown_drains_idle_keepalive_connections() {
    // Regression: the SIGTERM path sets an *external* flag; workers
    // idling on a held-open connection must still drain, or run()
    // never joins its scope.
    use std::sync::atomic::{AtomicBool, Ordering};
    let dir = temp_dir("sigterm_drain");
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    let run = RunBuilder::new(&spec)
        .seed(3)
        .target_edges(60)
        .build()
        .unwrap();
    store.ingest(&run).unwrap();
    let server = Server::bind(store, &ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    static FLAG: AtomicBool = AtomicBool::new(false);
    let serving = std::thread::spawn(move || server.run(Some(&FLAG)));

    // A connected client, idle between requests, occupies a worker.
    let mut idle = connect(addr);
    idle.ping().unwrap();
    FLAG.store(true, Ordering::Relaxed);
    // run() must return despite the held-open connection.
    let report = serving.join().unwrap();
    assert!(report.requests >= 1);
    FLAG.store(false, Ordering::Relaxed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_a_continuously_busy_connection() {
    // Regression: a client issuing back-to-back requests never lets the
    // worker hit the idle read path; the between-requests shutdown
    // check must drain it anyway.
    let dir = temp_dir("busy_drain");
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    let run = RunBuilder::new(&spec)
        .seed(5)
        .target_edges(60)
        .build()
        .unwrap();
    store.ingest(&run).unwrap();
    let server = Server::bind(store, &ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run(None));

    let hammer = std::thread::spawn(move || {
        let mut client = connect(addr);
        let mut served = 0u64;
        // Busy loop until the drain closes the connection under us.
        while client.ping().is_ok() {
            served += 1;
        }
        served
    });
    // Let the hammer get going, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();
    let report = serving.join().unwrap();
    let served = hammer.join().unwrap();
    assert!(served > 0, "the hammer never got through");
    assert!(report.requests >= served, "{report:?} vs {served}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_reloads_persisted_plans_warm() {
    let dir = temp_dir("plan_warm");
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    let run = RunBuilder::new(&spec)
        .seed(7)
        .target_edges(60)
        .build()
        .unwrap();
    store.ingest(&run).unwrap();
    let spec_q = |query: &str| QuerySpec {
        query: query.to_owned(),
        policy: String::new(),
        strategy: String::new(),
        stages: false,
        run: RunAddr::Index(0),
        mode: WireMode::EntryExit,
    };

    // Cold process: the first prepare compiles the plan and persists it
    // beside the index artifacts.
    let server = Server::bind(store, &ServeConfig::default()).unwrap();
    server.warm().unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run(None));
    let mut client = connect(addr);
    let cold = client.query(spec_q("_* e _*")).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.plan_rebuilds, 1, "first prepare compiles cold");
    assert_eq!(stats.plan_reloads, 0);
    handle.shutdown();
    serving.join().unwrap();

    // Restarted process: warm() pulls the persisted plan back through
    // the store tier — no recompilation — and the warm answer matches
    // the cold one.
    let reopened = RunStore::open(&dir).unwrap();
    let server = Server::bind(reopened, &ServeConfig::default()).unwrap();
    server.warm().unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run(None));
    let mut client = connect(addr);
    let warm = client.query(spec_q("_* e _*")).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.plan_reloads, 1, "restart decodes the persisted plan");
    assert_eq!(
        stats.plan_rebuilds, 0,
        "nothing recompiles on the warm path"
    );
    assert_eq!(cold.result, warm.result);
    handle.shutdown();
    serving.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_handle_stops_an_idle_server() {
    let dir = temp_dir("handle");
    let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
    let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
    let server = Server::bind(store, &ServeConfig::default()).unwrap();
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run(None));
    std::thread::sleep(Duration::from_millis(50));
    assert!(!handle.is_shutdown());
    handle.shutdown();
    let report = serving.join().unwrap();
    assert_eq!(report.requests, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
