//! Deterministic fault injection for the serving tier's tests.
//!
//! [`FaultProxy`] is a tiny TCP proxy that sits between a client (or
//! the router) and a real backend and misbehaves *on command*: refuse
//! connections, truncate a response mid-frame, stall forever after a
//! prefix, or trickle bytes slowly. Faults are applied on the
//! backend→client pump — the direction where a dying backend hurts —
//! while the client→backend pump stays faithful, so the backend always
//! sees well-formed requests.
//!
//! The point is determinism: `kill -9` in a smoke test exercises the
//! same client-visible symptom (connection reset mid-frame) but only
//! sometimes lands mid-frame. The proxy makes "the 17th byte of the
//! response never arrives" a reproducible fixture, which is what the
//! router's failover tests assert byte-identical answers under.
//!
//! [`corrupt_artifacts`] covers the remaining fault class — disk
//! corruption — by scribbling garbage into a store's persisted index
//! files; the store's decode-or-rebuild fallback turns that into a
//! correctness no-op, which the tests verify end to end.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the proxy does to backend→client traffic. Set it at any time
/// with [`FaultProxy::set_mode`]; new connections and in-flight pumps
/// observe the change on their next chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Pass traffic through untouched.
    None,
    /// Refuse new connections (accepted, then immediately closed) and
    /// cut existing ones.
    Refuse,
    /// Forward `after` response bytes, then close the client side —
    /// a response truncated mid-frame.
    TruncateResponse {
        /// Bytes forwarded before the cut.
        after: usize,
    },
    /// Forward `after` response bytes, then forward nothing more while
    /// keeping the connection open — the black-hole stall that only a
    /// deadline can unstick.
    Stall {
        /// Bytes forwarded before the stall.
        after: usize,
    },
    /// Trickle the response `chunk` bytes at a time with `delay_ms`
    /// between chunks — a slow reader/backend that tests deadline
    /// budgets without a full stall.
    SlowRead {
        /// Bytes forwarded per chunk.
        chunk: usize,
        /// Pause between chunks, in milliseconds.
        delay_ms: u64,
    },
}

/// The modes, collapsed for lock-free sharing with pump threads.
const MODE_NONE: u8 = 0;
const MODE_REFUSE: u8 = 1;
const MODE_TRUNCATE: u8 = 2;
const MODE_STALL: u8 = 3;
const MODE_SLOW: u8 = 4;

#[derive(Debug)]
struct Shared {
    mode: AtomicU8,
    after: AtomicUsize,
    chunk: AtomicUsize,
    delay_ms: AtomicUsize,
    /// Response bytes forwarded since the last `set_mode` — the
    /// counter `after` cuts against, cumulative across connections so
    /// "truncate after N bytes" means N bytes of *service*, not N per
    /// retry.
    forwarded: AtomicUsize,
}

/// A fault-injecting TCP proxy in front of one backend address.
///
/// Dropping the handle stops the accept loop; pump threads die with
/// their connections.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy on an ephemeral loopback port, forwarding to
    /// `backend`, in [`FaultMode::None`].
    pub fn start(backend: SocketAddr) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            mode: AtomicU8::new(MODE_NONE),
            after: AtomicUsize::new(0),
            chunk: AtomicUsize::new(0),
            delay_ms: AtomicUsize::new(0),
            forwarded: AtomicUsize::new(0),
        });
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        if accept_shared.mode.load(Ordering::Relaxed) == MODE_REFUSE {
                            drop(client);
                            continue;
                        }
                        let Ok(upstream) = TcpStream::connect(backend) else {
                            drop(client);
                            continue;
                        };
                        let _ = client.set_nodelay(true);
                        let _ = upstream.set_nodelay(true);
                        spawn_pumps(client, upstream, Arc::clone(&accept_shared));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(FaultProxy {
            addr,
            shared,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switch fault modes and reset the forwarded-byte counter the
    /// byte-positioned modes cut against.
    pub fn set_mode(&self, mode: FaultMode) {
        let (tag, after, chunk, delay_ms) = match mode {
            FaultMode::None => (MODE_NONE, 0, 0, 0),
            FaultMode::Refuse => (MODE_REFUSE, 0, 0, 0),
            FaultMode::TruncateResponse { after } => (MODE_TRUNCATE, after, 0, 0),
            FaultMode::Stall { after } => (MODE_STALL, after, 0, 0),
            FaultMode::SlowRead { chunk, delay_ms } => {
                (MODE_SLOW, 0, chunk.max(1), delay_ms as usize)
            }
        };
        self.shared.after.store(after, Ordering::Relaxed);
        self.shared.chunk.store(chunk, Ordering::Relaxed);
        self.shared.delay_ms.store(delay_ms, Ordering::Relaxed);
        self.shared.forwarded.store(0, Ordering::Relaxed);
        self.shared.mode.store(tag, Ordering::Relaxed);
    }

    /// Response bytes forwarded since the last [`FaultProxy::set_mode`].
    pub fn forwarded(&self) -> usize {
        self.shared.forwarded.load(Ordering::Relaxed)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Two pump threads per connection: a faithful client→backend pump and
/// a fault-applying backend→client pump.
fn spawn_pumps(client: TcpStream, upstream: TcpStream, shared: Arc<Shared>) {
    let (client_read, client_write) = (client.try_clone().expect("clone client stream"), client);
    let (upstream_read, upstream_write) = (
        upstream.try_clone().expect("clone upstream stream"),
        upstream,
    );
    std::thread::spawn(move || pump_faithful(client_read, upstream_write));
    std::thread::spawn(move || pump_faulty(upstream_read, client_write, shared));
}

fn pump_faithful(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
}

fn pump_faulty(mut from: TcpStream, mut to: TcpStream, shared: Arc<Shared>) {
    // Short read timeout so a mode change (e.g. → Refuse) is noticed
    // even while the backend is quiet.
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = [0u8; 4096];
    loop {
        let mode = shared.mode.load(Ordering::Relaxed);
        if mode == MODE_REFUSE {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => break,
        };
        let mut sent = 0;
        while sent < n {
            // Re-read the mode per slice: a frame larger than the
            // cut-off must be truncated inside this read, not after.
            match shared.mode.load(Ordering::Relaxed) {
                MODE_NONE => {
                    if to.write_all(&buf[sent..n]).is_err() {
                        return;
                    }
                    shared.forwarded.fetch_add(n - sent, Ordering::Relaxed);
                    sent = n;
                }
                MODE_TRUNCATE | MODE_STALL => {
                    let cut = shared.after.load(Ordering::Relaxed);
                    let done = shared.forwarded.load(Ordering::Relaxed);
                    let budget = cut.saturating_sub(done);
                    let take = budget.min(n - sent);
                    if take > 0 {
                        if to.write_all(&buf[sent..sent + take]).is_err() {
                            return;
                        }
                        shared.forwarded.fetch_add(take, Ordering::Relaxed);
                        sent += take;
                    }
                    if sent < n {
                        if shared.mode.load(Ordering::Relaxed) == MODE_TRUNCATE {
                            let _ = to.shutdown(std::net::Shutdown::Both);
                            return;
                        }
                        // Stall: hold the connection open, forward
                        // nothing, until the mode changes.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
                MODE_SLOW => {
                    let chunk = shared.chunk.load(Ordering::Relaxed).max(1);
                    let delay = shared.delay_ms.load(Ordering::Relaxed) as u64;
                    let take = chunk.min(n - sent);
                    if to.write_all(&buf[sent..sent + take]).is_err() {
                        return;
                    }
                    shared.forwarded.fetch_add(take, Ordering::Relaxed);
                    sent += take;
                    if sent < n {
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                }
                // Refuse (or an unknown tag): cut the connection.
                _ => {
                    let _ = to.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
}

/// Scribble garbage into every persisted index artifact under a store
/// directory — the corrupt-artifact fault point. The store's
/// decode-or-rebuild fallback must absorb this without a wrong answer;
/// returns how many files were corrupted.
pub fn corrupt_artifacts(store_dir: &std::path::Path) -> std::io::Result<usize> {
    let index = store_dir.join("index");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&index)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let is_artifact = name.as_deref().is_some_and(|n| {
            (n.starts_with("tag-") || n.starts_with("csr-")) && n.ends_with(".bin")
        });
        if is_artifact {
            std::fs::write(&path, b"corrupted-by-fault-injection")?;
            corrupted += 1;
        }
    }
    Ok(corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-shot echo server: accepts connections, echoes bytes back.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit — the
            // tests below open at most a handful.
            for _ in 0..8 {
                let Ok((mut conn, _)) = listener.accept() else {
                    return;
                };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = conn.read(&mut buf) {
                        if n == 0 || conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn passthrough_then_truncate_then_refuse() {
        let (backend, _server) = echo_server();
        let proxy = FaultProxy::start(backend).unwrap();

        // Passthrough: bytes echo through the proxy unchanged.
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(proxy.forwarded(), 5);

        // Truncate: only the first 3 response bytes arrive, then EOF.
        proxy.set_mode(FaultMode::TruncateResponse { after: 3 });
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"abcdef").unwrap();
        let mut got = Vec::new();
        let _ = conn.read_to_end(&mut got);
        assert_eq!(got, b"abc");

        // Refuse: the connection dies without service.
        proxy.set_mode(FaultMode::Refuse);
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = conn.write_all(b"zz");
        let mut got = Vec::new();
        let _ = conn.read_to_end(&mut got);
        assert!(got.is_empty(), "refused connection must serve nothing");
    }

    #[test]
    fn stall_holds_the_connection_quiet() {
        let (backend, _server) = echo_server();
        let proxy = FaultProxy::start(backend).unwrap();
        proxy.set_mode(FaultMode::Stall { after: 2 });
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"abcdef").unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let mut buf = [0u8; 2];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        // The rest never comes: the read times out rather than EOFs.
        let mut probe = [0u8; 1];
        let err = conn.read_exact(&mut probe).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a timeout, got {err:?}"
        );
    }

    #[test]
    fn slow_read_trickles_the_full_payload() {
        let (backend, _server) = echo_server();
        let proxy = FaultProxy::start(backend).unwrap();
        proxy.set_mode(FaultMode::SlowRead {
            chunk: 2,
            delay_ms: 5,
        });
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"abcdefgh").unwrap();
        let started = std::time::Instant::now();
        let mut buf = [0u8; 8];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdefgh");
        assert!(
            started.elapsed() >= Duration::from_millis(10),
            "slow mode must actually pace the bytes"
        );
    }
}
