//! The wire protocol: length-prefixed frames of binary-coded messages.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +------+---------+------------+------------------------+
//! | RPQN | version | length u32 | payload (length bytes) |
//! +------+---------+------------+------------------------+
//!   4 B      1 B     LE, capped    rpq_store::codec bytes
//! ```
//!
//! The payload reuses the run store's binary codec
//! ([`rpq_store::codec`]) — magic/version header, string interning,
//! varints, allocation-capped decode — so the service speaks the same
//! dialect the store persists, and every decode failure is a clean
//! error rather than a panic or an unbounded allocation. The frame
//! length is capped at [`MAX_FRAME`] on both sides: a corrupt or
//! hostile length prefix can never drive a multi-gigabyte read.
//!
//! Requests address runs **by store fingerprint** ([`RunAddr`]): the
//! 128-bit structural fingerprint is stable across store rebuilds and
//! process restarts, where catalog positions are not. (Positional
//! addressing is still offered for load generators sweeping a corpus.)

use rpq_core::{IndexCacheUse, PlanKind, QueryOutcome, QueryRequest, QueryResult, RpqError};
use rpq_labeling::{EventBatch, NodeId, Run};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Frame magic: `RPQN` ("rpq network").
pub const MAGIC: [u8; 4] = *b"RPQN";

/// Protocol version; bumped on any wire-incompatible change.
/// (v2 added the closure-algorithm counters to [`WireOutcome`] and
/// [`WireStatsReply`]; v3 added the live-ingestion verbs —
/// [`WireRequest::Append`], [`WireRequest::Subscribe`],
/// [`WireRequest::Unsubscribe`] — and the store epoch / append
/// counters in [`WireStatsReply`]; v4 added chunked streaming
/// responses — [`WireResponse::OutcomeStream`] followed by
/// [`WireResponse::Chunk`] frames — the replication verbs
/// [`WireRequest::FetchRun`] / [`WireRequest::PushRun`], and the
/// router's degraded [`WireResponse::Unavailable`] frame; v5 added the
/// observability surface — [`WireRequest::Metrics`] answered by
/// [`WireResponse::Metrics`] with a mergeable registry snapshot and
/// the slow-query ring, the per-request stage breakdown in
/// [`WireOutcome::stages`], and the retry / config-warning counters in
/// [`WireStatsReply`]; v6 added the lazy product-graph evaluation
/// strategy — [`QuerySpec::strategy`], the resolved
/// [`WireOutcome::strategy`] / [`WireOutcome::product_states`], the
/// strategy / expansion counters in [`WireStatsReply`] — and chunked
/// subscription pushes: a [`WireResponse::DeltaStream`] header followed
/// by [`WireResponse::Chunk`] frames when one delta outgrows the
/// server's chunk bound; v7 added the shared-condensation counters —
/// [`WireOutcome::condensations_computed`] /
/// [`WireOutcome::condensations_reused`] per request plus their
/// process-wide twins in [`WireStatsReply`] — and the persisted
/// plan-cache counters [`WireStatsReply::plan_reloads`] /
/// [`WireStatsReply::plan_rebuilds`].)
pub const VERSION: u8 = 7;

/// Hard cap on one frame's payload (64 MiB) — bounds the allocation a
/// length prefix can demand before a single payload byte is read.
pub const MAX_FRAME: usize = 64 << 20;

/// How a request names the run it queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunAddr {
    /// The run's 128-bit structural fingerprint (`hi`, `lo`) — the
    /// stable address ([`rpq_store::RunStore::find_by_fingerprint`]).
    Fingerprint(u64, u64),
    /// Catalog position (ingestion order) — convenient for load
    /// generators; unstable across removals.
    Index(u64),
}

/// The evaluation mode, mirroring [`QueryRequest`] with wire-friendly
/// node ids (raw `u32` indexes into the run).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireMode {
    /// Pairwise verdict between two nodes.
    Pairwise(u32, u32),
    /// Pairwise verdict from the run's entry to its exit.
    EntryExit,
    /// All matching pairs of `l1 × l2`.
    AllPairs(Vec<u32>, Vec<u32>),
    /// All matching pairs over the whole node universe — expanded
    /// server-side, so no id lists ship on the wire (an explicit
    /// `AllPairs(0..n, 0..n)` would otherwise grow linearly with the
    /// run and needs a round trip just to learn `n`).
    AllPairsFull,
    /// All matching pairs from a fixed source.
    SourceStar(u32),
    /// All matching pairs into a fixed target.
    TargetStar(u32),
    /// Nodes reachable from a fixed source along a matching path.
    Reachable(u32),
}

impl WireMode {
    /// Lower to a [`QueryRequest`], validating every node id against
    /// the run (out-of-range ids would panic deep inside evaluation).
    pub fn to_request(&self, run: &Run) -> Result<QueryRequest, RpqError> {
        let n = run.n_nodes() as u32;
        let check = |id: u32| -> Result<NodeId, RpqError> {
            if id < n {
                Ok(NodeId(id))
            } else {
                Err(RpqError::invalid(format!(
                    "node id {id} out of range for a {n}-node run"
                )))
            }
        };
        let check_all = |ids: &[u32]| -> Result<Vec<NodeId>, RpqError> {
            ids.iter().map(|&id| check(id)).collect()
        };
        Ok(match self {
            WireMode::Pairwise(u, v) => QueryRequest::Pairwise(check(*u)?, check(*v)?),
            WireMode::EntryExit => QueryRequest::EntryExit,
            WireMode::AllPairs(l1, l2) => QueryRequest::AllPairs(check_all(l1)?, check_all(l2)?),
            WireMode::AllPairsFull => {
                let all: Vec<NodeId> = run.node_ids().collect();
                QueryRequest::AllPairs(all.clone(), all)
            }
            WireMode::SourceStar(u) => QueryRequest::SourceStar(check(*u)?),
            WireMode::TargetStar(v) => QueryRequest::TargetStar(check(*v)?),
            WireMode::Reachable(u) => QueryRequest::Reachable(check(*u)?),
        })
    }
}

/// One query to evaluate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The regular path query text (server-side parsed and plan-cached).
    pub query: String,
    /// Subquery policy by CLI name (`cost` / `memo` / `naive`); empty
    /// means the server's default.
    pub policy: String,
    /// Evaluation strategy by CLI name (`auto` / `lazy` /
    /// `materialized`); empty means the server's process-wide default
    /// (its `RPQ_EVAL_STRATEGY` / `--strategy` setting).
    pub strategy: String,
    /// Which stored run to evaluate over.
    pub run: RunAddr,
    /// Ship the per-stage timing breakdown in the outcome. Stage
    /// timings always land in the server's histograms and slow-query
    /// log; serializing them onto every response is measurable at
    /// closed-loop rates, so the wire copy is opt-in (the CLI asks for
    /// it, the bench harness does not).
    pub stages: bool,
    /// The evaluation mode.
    pub mode: WireMode,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Evaluate a query.
    Query(QuerySpec),
    /// Snapshot the server's session/store/service counters.
    Stats,
    /// List the stored runs (ids, fingerprints, sizes).
    ListRuns,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting and drain.
    Shutdown,
    /// Append a batch of new nodes/edges to an open run. The store
    /// maintains the run's persisted indexes incrementally and the
    /// server refreshes its session caches; the reply is
    /// [`WireResponse::Appended`].
    Append {
        /// Which stored run to grow.
        run: RunAddr,
        /// The events to apply.
        batch: EventBatch,
    },
    /// Stand a query up over an open run: the server replies
    /// [`WireResponse::Subscribed`] with the current answer, then
    /// pushes a [`WireResponse::Delta`] with *newly derived* answers
    /// each time an append lands. The connection stays in push mode
    /// until [`WireRequest::Unsubscribe`], disconnect, or server
    /// shutdown.
    Subscribe(QuerySpec),
    /// Leave push mode; the server replies
    /// [`WireResponse::Unsubscribed`] (after any in-flight deltas) and
    /// the connection returns to request/response.
    Unsubscribe,
    /// Fetch a stored run's full event data — the replication verb a
    /// peer (or the router's sync loop) uses to copy an immutable
    /// artifact off this backend. The reply is
    /// [`WireResponse::RunData`], stamped with the donor's catalog
    /// epoch so the recipient can order what it heard.
    FetchRun(RunAddr),
    /// Ingest a run shipped from a peer — the receiving half of
    /// replication. Deduplicated by structural fingerprint like any
    /// other ingest; the reply is [`WireResponse::Pushed`].
    PushRun {
        /// The run to ingest.
        run: Run,
    },
    /// Snapshot the server's metrics registry — counters, gauges,
    /// latency histograms, notes, and the slow-query ring — as a
    /// [`WireResponse::Metrics`]. Routers answer this verb themselves
    /// by merging every reachable backend's snapshot with their own
    /// per-backend health/retry/sync metrics, so one scrape shows the
    /// whole fleet.
    Metrics,
}

/// A query result on the wire, mirroring [`QueryResult`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireResult {
    /// Pairwise verdict.
    Bool(bool),
    /// Matching pairs, sorted.
    Pairs(Vec<(u32, u32)>),
    /// Matching nodes (reachability), sorted.
    Nodes(Vec<u32>),
}

impl WireResult {
    /// Convert an in-process result for the wire.
    pub fn from_result(result: &QueryResult) -> WireResult {
        match result {
            QueryResult::Bool(b) => WireResult::Bool(*b),
            QueryResult::Pairs(pairs) => {
                WireResult::Pairs(pairs.iter().map(|(u, v)| (u.0, v.0)).collect())
            }
            QueryResult::Nodes(nodes) => WireResult::Nodes(nodes.iter().map(|n| n.0).collect()),
        }
    }

    /// Number of matches (1/0 for verdicts).
    pub fn len(&self) -> usize {
        match self {
            WireResult::Bool(b) => usize::from(*b),
            WireResult::Pairs(pairs) => pairs.len(),
            WireResult::Nodes(nodes) => nodes.len(),
        }
    }

    /// Did the query match nothing?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty result of the same kind — the placeholder a
    /// [`WireResponse::OutcomeStream`] header carries while the real
    /// matches follow in chunks. (For `Bool` the verdict itself is
    /// carried: a one-bit result never streams.)
    pub fn empty_like(&self) -> WireResult {
        match self {
            WireResult::Bool(b) => WireResult::Bool(*b),
            WireResult::Pairs(_) => WireResult::Pairs(Vec::new()),
            WireResult::Nodes(_) => WireResult::Nodes(Vec::new()),
        }
    }

    /// Append one streamed chunk; kinds must match the header's.
    /// Chunks arrive in order and pre-sorted, so concatenation
    /// reproduces the unchunked result byte for byte.
    pub fn absorb_chunk(&mut self, part: WireResult) -> Result<(), RpqError> {
        match (self, part) {
            (WireResult::Pairs(acc), WireResult::Pairs(part)) => acc.extend(part),
            (WireResult::Nodes(acc), WireResult::Nodes(part)) => acc.extend(part),
            (WireResult::Bool(acc), WireResult::Bool(part)) => *acc = *acc || part,
            (header, part) => {
                return Err(RpqError::invalid(format!(
                    "streamed chunk kind does not match the outcome header \
                     (header {header:?}, chunk {part:?})"
                )))
            }
        }
        Ok(())
    }
}

/// A query outcome on the wire: the result plus the per-request
/// [`rpq_core::EvalMeta`] and server-side timing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireOutcome {
    /// The result payload.
    pub result: WireResult,
    /// `safe` or `composite` — which plan strategy ran.
    pub plan_kind: String,
    /// `hit` / `miss` / `none` — the per-run index-cache interaction.
    pub index_cache: String,
    /// Relational kernel mode in force (`auto` / `bits` / `pairs` /
    /// `scc`).
    pub kernel: String,
    /// Transitive closures this evaluation ran through the semi-naive
    /// pair fixpoint.
    pub closure_pairs: u64,
    /// Closures run through the blocked-bitset semi-naive fixpoint.
    pub closure_bits: u64,
    /// Closures run through the Tarjan condensation pass.
    pub closure_scc: u64,
    /// SCC condensations this evaluation computed from scratch.
    pub condensations_computed: u64,
    /// SCC condensations this evaluation reused from the run-scoped
    /// condensation cache instead of recomputing.
    pub condensations_reused: u64,
    /// Candidate nodes the request ranged over.
    pub nodes_touched: u64,
    /// `lazy` or `materialized` — the *resolved* evaluation strategy
    /// that answered (an `auto` request reports what auto picked).
    pub strategy: String,
    /// `(dfa_state, node)` product states the lazy engine expanded;
    /// 0 for materialized evaluations.
    pub product_states: u64,
    /// Server-side evaluation time in microseconds (excludes transport).
    pub micros: u64,
    /// Per-stage timing breakdown in microseconds, self-time per stage
    /// (session stages such as `plan` / `index` / `csr` / `eval` plus
    /// the server's own `load` span). Empty when tracing is disabled
    /// or the request left [`QuerySpec::stages`] unset.
    pub stages: Vec<(String, u64)>,
}

impl WireOutcome {
    /// Package an in-process outcome for the wire. `stages` starts
    /// empty: the stage breakdown spans two trace frames (the
    /// session's, carried in the outcome's metadata, and the server's
    /// own), so the server merges and attaches it — and only when the
    /// request opted in ([`QuerySpec::stages`]).
    pub fn from_outcome(outcome: &QueryOutcome, micros: u64) -> WireOutcome {
        WireOutcome {
            result: WireResult::from_result(&outcome.result),
            plan_kind: match outcome.meta.plan_kind {
                PlanKind::Safe => "safe",
                PlanKind::Composite => "composite",
            }
            .to_owned(),
            index_cache: match outcome.meta.index_cache {
                IndexCacheUse::NotNeeded => "none",
                IndexCacheUse::Hit => "hit",
                IndexCacheUse::Miss => "miss",
            }
            .to_owned(),
            kernel: outcome.meta.kernel.name().to_owned(),
            closure_pairs: outcome.meta.closures.pairs,
            closure_bits: outcome.meta.closures.bits,
            closure_scc: outcome.meta.closures.scc,
            condensations_computed: outcome.meta.condensations.computed,
            condensations_reused: outcome.meta.condensations.reused,
            nodes_touched: outcome.meta.nodes_touched as u64,
            strategy: outcome.meta.strategy.name().to_owned(),
            product_states: outcome.meta.product_states,
            micros,
            stages: Vec::new(),
        }
    }
}

/// What an [`WireRequest::Append`] did, mirroring
/// [`rpq_store::Appended`] with wire-flattened fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireAppended {
    /// The open run's growth sequence number after this append.
    pub seq: u64,
    /// The store's catalog epoch after this append.
    pub epoch: u64,
    /// Nodes the batch added.
    pub new_nodes: u64,
    /// Edges the batch added (net of duplicates).
    pub new_edges: u64,
    /// `1` if the churn threshold forced a full index rebuild, `0` if
    /// the delta maintenance path ran.
    pub rebuilt: u64,
    /// Total nodes after the append.
    pub n_nodes: u64,
    /// Total edges after the append.
    pub n_edges: u64,
    /// New structural fingerprint, high half — the run's stable
    /// [`RunAddr::Fingerprint`] address changes on every append.
    pub fp_hi: u64,
    /// New structural fingerprint, low half.
    pub fp_lo: u64,
}

impl WireAppended {
    /// Package a store-level append receipt for the wire.
    pub fn from_appended(a: &rpq_store::Appended) -> WireAppended {
        WireAppended {
            seq: a.seq,
            epoch: a.epoch,
            new_nodes: a.new_nodes as u64,
            new_edges: a.new_edges as u64,
            rebuilt: u64::from(a.rebuilt),
            n_nodes: a.n_nodes as u64,
            n_edges: a.n_edges as u64,
            fp_hi: a.fingerprint.0,
            fp_lo: a.fingerprint.1,
        }
    }
}

/// One stored run, as listed by [`WireRequest::ListRuns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireRunInfo {
    /// Store id.
    pub id: u64,
    /// Fingerprint high half.
    pub fp_hi: u64,
    /// Fingerprint low half.
    pub fp_lo: u64,
    /// Node count.
    pub n_nodes: u64,
    /// Edge count.
    pub n_edges: u64,
}

/// Counter snapshot of [`WireRequest::Stats`]: the session's cache
/// movement, the store's reload/rebuild counters and the service's own
/// admission numbers, flattened for the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStatsReply {
    /// Plan-cache hits ([`rpq_core::SessionStats`]).
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Tag-index cache hits.
    pub index_hits: u64,
    /// Tag-index cache misses.
    pub index_misses: u64,
    /// CSR-arena cache hits.
    pub csr_hits: u64,
    /// CSR-arena cache misses.
    pub csr_misses: u64,
    /// Tag indexes + CSR arenas dropped by the session LRU bound.
    pub session_evictions: u64,
    /// Runs in the store's catalog.
    pub store_runs: u64,
    /// Artifacts decoded from disk ([`rpq_store::StoreStats`]).
    pub tag_reloads: u64,
    /// CSR artifacts decoded from disk.
    pub csr_reloads: u64,
    /// Artifacts re-derived from their runs.
    pub tag_rebuilds: u64,
    /// CSR artifacts re-derived.
    pub csr_rebuilds: u64,
    /// Connections the service accepted.
    pub accepted: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Connections refused with [`WireResponse::Overloaded`].
    pub overloaded: u64,
    /// Requests answered with [`WireResponse::Error`].
    pub request_errors: u64,
    /// Process-wide closures run by the semi-naive pair fixpoint
    /// (`rpq_relalg::closure_counts`).
    pub closures_pairs: u64,
    /// Process-wide closures run by the blocked-bitset fixpoint.
    pub closures_bits: u64,
    /// Process-wide closures run by the Tarjan condensation pass.
    pub closures_scc: u64,
    /// Process-wide SCC condensations computed from scratch
    /// (`rpq_relalg::condensation_counts`).
    pub condensations_computed: u64,
    /// Process-wide SCC condensations answered by the run-scoped
    /// condensation cache.
    pub condensations_reused: u64,
    /// Compiled plans decoded warm from the store's persisted plan
    /// cache ([`rpq_store::StoreStats`]).
    pub plan_reloads: u64,
    /// Compiled plans built cold and persisted for the next process.
    pub plan_rebuilds: u64,
    /// The store's catalog epoch — a monotonic counter bumped on every
    /// catalog-visible mutation (ingest, append, remove, gc).
    pub store_epoch: u64,
    /// Append batches applied to open runs.
    pub appends: u64,
    /// Appends whose churn crossed the threshold and forced a full
    /// index rebuild instead of delta maintenance.
    pub append_rebuilds: u64,
    /// Subscriptions the service accepted ([`WireRequest::Subscribe`]).
    pub subscriptions: u64,
    /// Reconnect/backoff retries taken by this process's outbound
    /// clients (`connect_with_retry` pauses plus router failover
    /// re-dispatches).
    pub retries: u64,
    /// Configuration values that failed to parse and fell back to a
    /// default (`RPQ_RELALG_KERNEL` etc.); the last warning's text
    /// travels as a note in the metrics snapshot.
    pub config_warnings: u64,
    /// Evaluations answered by the lazy product-graph engine
    /// (`rpq_core::lazy_counts`).
    pub strategy_lazy: u64,
    /// Evaluations answered by the materialized plan path.
    pub strategy_materialized: u64,
    /// `(dfa_state, node)` product states the lazy engine expanded,
    /// process-wide.
    pub lazy_expansions: u64,
}

/// One latency histogram on the wire: per-bucket counts in
/// [`rpq_obs`]'s fixed log₂ bucket layout plus the running sum/count,
/// mirroring [`rpq_obs::HistogramSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireHistogram {
    /// Per-bucket observation counts (bucket `i` covers values of bit
    /// length `i`; bucket 0 is exact zero, the last bucket overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl WireHistogram {
    /// Package a registry histogram snapshot for the wire.
    pub fn from_snapshot(h: &rpq_obs::HistogramSnapshot) -> WireHistogram {
        WireHistogram {
            buckets: h.buckets.clone(),
            count: h.count,
            sum: h.sum,
        }
    }

    /// Rebuild the mergeable snapshot (for percentile math client-side).
    pub fn to_snapshot(&self) -> rpq_obs::HistogramSnapshot {
        rpq_obs::HistogramSnapshot {
            buckets: self.buckets.clone(),
            count: self.count,
            sum: self.sum,
        }
    }
}

/// One slow-query log entry on the wire, mirroring
/// [`rpq_obs::SlowQuery`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSlowQuery {
    /// The query text as received.
    pub query: String,
    /// Hex fingerprint of the run it evaluated over.
    pub fingerprint: String,
    /// Kernel mode in force (`auto` / `pairs` / `bits` / `scc`).
    pub kernel: String,
    /// Closures run by the pair fixpoint during this evaluation.
    pub closure_pairs: u64,
    /// Closures run by the blocked-bitset fixpoint.
    pub closure_bits: u64,
    /// Closures run by the Tarjan condensation pass.
    pub closure_scc: u64,
    /// Per-stage self-times in microseconds.
    pub stages: Vec<(String, u64)>,
    /// Total server-side time in microseconds.
    pub total_micros: u64,
}

impl WireSlowQuery {
    /// Package a slow-log entry for the wire.
    pub fn from_entry(e: &rpq_obs::SlowQuery) -> WireSlowQuery {
        WireSlowQuery {
            query: e.query.clone(),
            fingerprint: e.fingerprint.clone(),
            kernel: e.kernel.clone(),
            closure_pairs: e.closures[0],
            closure_bits: e.closures[1],
            closure_scc: e.closures[2],
            stages: e.stages.clone(),
            total_micros: e.total_micros,
        }
    }
}

/// A full metrics scrape: the registry snapshot (counters, gauges,
/// histograms, notes) plus the slow-query ring, oldest first. Replies
/// to [`WireRequest::Metrics`]; snapshots merge name-wise
/// ([`rpq_obs::MetricsSnapshot::merge`]), which is how the router folds
/// every backend's scrape into one fleet-wide answer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMetricsReply {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Latency histograms, sorted by name.
    pub histograms: Vec<(String, WireHistogram)>,
    /// Free-text annotations (e.g. the last config warning).
    pub notes: Vec<(String, String)>,
    /// The slow-query ring, oldest first; empty when no `--slow-ms`
    /// threshold is set.
    pub slow: Vec<WireSlowQuery>,
}

impl WireMetricsReply {
    /// Package a registry snapshot (plus slow-log entries) for the wire.
    pub fn from_snapshot(
        snap: &rpq_obs::MetricsSnapshot,
        slow: Vec<rpq_obs::SlowQuery>,
    ) -> WireMetricsReply {
        WireMetricsReply {
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), WireHistogram::from_snapshot(h)))
                .collect(),
            notes: snap.notes.clone(),
            slow: slow.iter().map(WireSlowQuery::from_entry).collect(),
        }
    }

    /// Rebuild the mergeable registry snapshot (drops the slow log).
    pub fn to_snapshot(&self) -> rpq_obs::MetricsSnapshot {
        rpq_obs::MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.to_snapshot()))
                .collect(),
            notes: self.notes.clone(),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireResponse {
    /// A query's outcome.
    Outcome(WireOutcome),
    /// The counter snapshot.
    Stats(WireStatsReply),
    /// The run inventory.
    Runs(Vec<WireRunInfo>),
    /// Liveness reply.
    Pong,
    /// Admission control refused the connection: the waiting queue is
    /// full. The connection closes after this response — retry with
    /// backoff. Carries the queue bound that was hit.
    Overloaded {
        /// The configured waiting-connection bound.
        queue: u64,
    },
    /// The server acknowledged [`WireRequest::Shutdown`] and is
    /// draining.
    ShuttingDown,
    /// An [`WireRequest::Append`] landed; carries the growth receipt.
    Appended(WireAppended),
    /// A subscription is standing; carries the open run's current
    /// growth sequence and the query's *current* full answer (the
    /// baseline every later [`WireResponse::Delta`] is relative to).
    Subscribed {
        /// Growth sequence the baseline was evaluated at.
        seq: u64,
        /// The current answer.
        initial: WireResult,
    },
    /// Pushed to a subscriber after an append: only the answers that
    /// are *new* since the previous push (for verdict modes, a
    /// `Bool(true)` the first time the verdict flips to true).
    Delta {
        /// Growth sequence this delta was evaluated at.
        seq: u64,
        /// Newly derived answers only.
        added: WireResult,
    },
    /// The server left push mode; request/response resumes.
    Unsubscribed,
    /// Header of a chunked subscription push: a [`WireResponse::Delta`]
    /// whose `added` payload outgrew the server's chunk bound. Carries
    /// the growth sequence and an *empty* result of the correct kind;
    /// the newly derived answers follow in [`WireResponse::Chunk`]
    /// frames, exactly like an [`WireResponse::OutcomeStream`].
    DeltaStream {
        /// Growth sequence this delta was evaluated at.
        seq: u64,
        /// Empty placeholder of the delta's result kind.
        added: WireResult,
    },
    /// Header of a chunked query outcome: the metadata of
    /// [`WireResponse::Outcome`] whose `result` field is an *empty*
    /// result of the correct kind; the actual matches follow in
    /// [`WireResponse::Chunk`] frames. Servers switch to this shape
    /// when one `Outcome` frame would be huge (`AllPairs` over a big
    /// run) — many bounded frames instead of one 64 MiB frame.
    OutcomeStream(WireOutcome),
    /// One slice of a chunked outcome. The final slice has `last`
    /// set; concatenating every `part` in arrival order reproduces the
    /// unchunked result exactly (the parts are already globally
    /// sorted).
    Chunk {
        /// Is this the final slice?
        last: bool,
        /// The matches in this slice.
        part: WireResult,
    },
    /// The request could not be served by any replica — the router's
    /// degraded answer when every backend holding the run is down,
    /// distinct from [`WireResponse::Overloaded`] (retry soon) and
    /// [`WireResponse::Error`] (the request itself is at fault).
    Unavailable {
        /// What was unreachable and why.
        message: String,
    },
    /// A [`WireRequest::FetchRun`] reply: the run's full event data.
    RunData {
        /// The donor's catalog epoch when it served this copy.
        epoch: u64,
        /// The stored run.
        run: Run,
    },
    /// A [`WireRequest::PushRun`] landed.
    Pushed {
        /// The id the run holds in the recipient's store.
        id: u64,
        /// `1` if the recipient already held this fingerprint, `0` if
        /// the push grew its corpus.
        deduplicated: u64,
        /// The recipient's catalog epoch after the push.
        epoch: u64,
    },
    /// A [`WireRequest::Metrics`] reply: the metrics snapshot and the
    /// slow-query ring.
    Metrics(WireMetricsReply),
    /// The request failed; the connection stays usable.
    Error {
        /// Stable error class (`parse` / `plan` / `grammar` / `run` /
        /// `io` / `invalid`).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// The stable error class of an [`RpqError`], as sent in
/// [`WireResponse::Error`].
pub fn error_kind(e: &RpqError) -> &'static str {
    match e {
        RpqError::Parse(_) => "parse",
        RpqError::Plan(_) => "plan",
        RpqError::Grammar(_) => "grammar",
        RpqError::Run(_) => "run",
        RpqError::Io { .. } => "io",
        RpqError::Invalid(_) => "invalid",
    }
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Encode `value` into one frame. The [`MAX_FRAME`] cap is enforced on
/// this side too: an oversized payload is an `Invalid` error *before*
/// any byte is written (otherwise the peer's cap check would kill the
/// connection after all the work was done — and a payload past `u32`
/// would silently truncate the length prefix into garbage framing).
pub fn encode_frame<T: Serialize>(value: &T) -> Result<Vec<u8>, RpqError> {
    let payload = rpq_store::codec::to_bytes(value);
    if payload.len() > MAX_FRAME {
        return Err(RpqError::invalid(format!(
            "message of {} bytes exceeds the {MAX_FRAME}-byte frame cap; \
             narrow the request (e.g. select fewer endpoints)",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(9 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Write `value` as one frame. An [`RpqError::Invalid`] means the
/// message was too large and *nothing was written* — the connection is
/// still in sync and the caller may substitute a smaller message (the
/// server sends an error response instead of an oversized outcome).
pub fn write_message<T: Serialize>(w: &mut impl Write, value: &T) -> Result<(), RpqError> {
    let frame = encode_frame(value)?;
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| RpqError::io("cannot write protocol frame", e))
}

/// Read one frame and decode its payload. Returns `Ok(None)` on a
/// clean end of stream (the peer closed between frames); a stream that
/// ends *inside* a frame is an error.
pub fn read_message<T: Deserialize>(r: &mut impl Read) -> Result<Option<T>, RpqError> {
    let mut header = [0u8; 9];
    match read_exact_or_eof(r, &mut header)? {
        ReadState::CleanEof => return Ok(None),
        ReadState::Filled => {}
    }
    decode_after_header(r, &header)
}

/// Validate a 9-byte frame header and return the payload length it
/// announces (already checked against [`MAX_FRAME`]). Public for
/// servers (this crate's and the router's) that interleave patient,
/// timeout-polling reads with frame decoding.
pub fn frame_len(header: &[u8; 9]) -> Result<usize, RpqError> {
    if header[..4] != MAGIC {
        return Err(RpqError::invalid(
            "not an rpq protocol frame (bad magic)".to_owned(),
        ));
    }
    if header[4] != VERSION {
        return Err(RpqError::invalid(format!(
            "unsupported protocol version {} (this build speaks {VERSION})",
            header[4]
        )));
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > MAX_FRAME {
        return Err(RpqError::invalid(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    Ok(len)
}

/// Decode one frame's payload bytes.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, RpqError> {
    rpq_store::codec::from_bytes(payload)
        .map_err(|e| RpqError::invalid(format!("corrupt protocol payload: {e}")))
}

/// Shared tail of [`read_message`] and the server's interruptible
/// reader: validate a 9-byte header and decode the payload it announces.
pub(crate) fn decode_after_header<T: Deserialize>(
    r: &mut impl Read,
    header: &[u8; 9],
) -> Result<Option<T>, RpqError> {
    let len = frame_len(header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| RpqError::io("truncated protocol frame", e))?;
    Ok(Some(decode_payload(&payload)?))
}

pub(crate) enum ReadState {
    CleanEof,
    Filled,
}

/// `read_exact`, except a stream that ends before the *first* byte is
/// a clean EOF rather than an error.
pub(crate) fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadState, RpqError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadState::CleanEof),
            Ok(0) => {
                return Err(RpqError::invalid(format!(
                    "stream ended {filled} bytes into a frame header"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RpqError::io("cannot read protocol frame", e)),
        }
    }
    Ok(ReadState::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let frame = encode_frame(&value).unwrap();
        let mut cursor = &frame[..];
        let back: T = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(back, value);
        assert!(cursor.is_empty());
    }

    #[test]
    fn requests_round_trip() {
        round_trip(WireRequest::Ping);
        round_trip(WireRequest::Stats);
        round_trip(WireRequest::ListRuns);
        round_trip(WireRequest::Shutdown);
        for mode in [
            WireMode::Pairwise(3, 9),
            WireMode::EntryExit,
            WireMode::AllPairs(vec![0, 1, 2], vec![2, 1]),
            WireMode::AllPairsFull,
            WireMode::SourceStar(0),
            WireMode::TargetStar(7),
            WireMode::Reachable(1),
        ] {
            round_trip(WireRequest::Query(QuerySpec {
                query: "_* a _*".to_owned(),
                policy: "cost".to_owned(),
                strategy: "lazy".to_owned(),
                stages: false,
                run: RunAddr::Fingerprint(0xdead, 0xbeef),
                mode,
            }));
        }
        round_trip(WireRequest::Query(QuerySpec {
            query: "a+".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(2),
            mode: WireMode::EntryExit,
        }));
    }

    #[test]
    fn streaming_verbs_round_trip() {
        use rpq_grammar::Tag;
        use rpq_labeling::RunEdge;

        round_trip(WireRequest::Unsubscribe);
        round_trip(WireRequest::Append {
            run: RunAddr::Index(0),
            batch: EventBatch::default(),
        });
        round_trip(WireRequest::Append {
            run: RunAddr::Fingerprint(7, 9),
            batch: EventBatch {
                nodes: Vec::new(),
                edges: vec![RunEdge {
                    src: NodeId(0),
                    dst: NodeId(3),
                    tag: Tag(1),
                }],
            },
        });
        round_trip(WireRequest::Subscribe(QuerySpec {
            query: "untrusted _* publish".to_owned(),
            policy: String::new(),
            strategy: String::new(),
            stages: false,
            run: RunAddr::Index(1),
            mode: WireMode::EntryExit,
        }));

        round_trip(WireResponse::Appended(WireAppended {
            seq: 3,
            epoch: 12,
            new_nodes: 2,
            new_edges: 5,
            rebuilt: 1,
            n_nodes: 40,
            n_edges: 95,
            fp_hi: 0xfeed,
            fp_lo: 0xf00d,
        }));
        round_trip(WireResponse::Subscribed {
            seq: 0,
            initial: WireResult::Pairs(vec![(0, 9)]),
        });
        round_trip(WireResponse::Delta {
            seq: 4,
            added: WireResult::Bool(true),
        });
        round_trip(WireResponse::Unsubscribed);
        round_trip(WireResponse::Stats(WireStatsReply {
            store_epoch: 8,
            appends: 3,
            append_rebuilds: 1,
            subscriptions: 2,
            ..WireStatsReply::default()
        }));
    }

    #[test]
    fn responses_round_trip() {
        round_trip(WireResponse::Pong);
        round_trip(WireResponse::ShuttingDown);
        round_trip(WireResponse::Overloaded { queue: 64 });
        round_trip(WireResponse::Error {
            kind: "parse".to_owned(),
            message: "unbalanced".to_owned(),
        });
        round_trip(WireResponse::Runs(vec![WireRunInfo {
            id: 1,
            fp_hi: 2,
            fp_lo: 3,
            n_nodes: 4,
            n_edges: 5,
        }]));
        round_trip(WireResponse::Stats(WireStatsReply {
            plan_hits: 1,
            requests: 9,
            ..WireStatsReply::default()
        }));
        for result in [
            WireResult::Bool(true),
            WireResult::Pairs(vec![(0, 1), (2, 3)]),
            WireResult::Nodes(vec![5, 6]),
        ] {
            round_trip(WireResponse::Outcome(WireOutcome {
                result,
                plan_kind: "safe".to_owned(),
                index_cache: "none".to_owned(),
                kernel: "auto".to_owned(),
                closure_pairs: 0,
                closure_bits: 1,
                closure_scc: 2,
                condensations_computed: 1,
                condensations_reused: 3,
                nodes_touched: 2,
                strategy: "materialized".to_owned(),
                product_states: 0,
                micros: 17,
                stages: vec![("plan".to_owned(), 3), ("eval".to_owned(), 11)],
            }));
        }
    }

    #[test]
    fn v4_replication_and_streaming_frames_round_trip() {
        round_trip(WireRequest::FetchRun(RunAddr::Fingerprint(0xabc, 0xdef)));
        round_trip(WireRequest::FetchRun(RunAddr::Index(3)));
        let run = rpq_labeling::RunBuilder::new(&rpq_workloads::paper_examples::fig2_spec())
            .seed(5)
            .target_edges(40)
            .build()
            .unwrap();
        round_trip(WireRequest::PushRun { run: run.clone() });
        round_trip(WireResponse::RunData { epoch: 12, run });
        round_trip(WireResponse::Pushed {
            id: 7,
            deduplicated: 1,
            epoch: 13,
        });
        round_trip(WireResponse::Unavailable {
            message: "all 2 replicas of run 00ab..cd are down".to_owned(),
        });
        round_trip(WireResponse::OutcomeStream(WireOutcome {
            result: WireResult::Pairs(Vec::new()),
            plan_kind: "safe".to_owned(),
            index_cache: "hit".to_owned(),
            kernel: "auto".to_owned(),
            closure_pairs: 0,
            closure_bits: 0,
            closure_scc: 0,
            condensations_computed: 0,
            condensations_reused: 0,
            nodes_touched: 9,
            strategy: "lazy".to_owned(),
            product_states: 120,
            micros: 4,
            stages: Vec::new(),
        }));
        round_trip(WireResponse::Chunk {
            last: false,
            part: WireResult::Pairs(vec![(0, 1), (0, 2)]),
        });
        round_trip(WireResponse::Chunk {
            last: true,
            part: WireResult::Nodes(vec![3, 4, 5]),
        });
    }

    #[test]
    fn v5_metrics_frames_round_trip() {
        round_trip(WireRequest::Metrics);
        round_trip(WireResponse::Metrics(WireMetricsReply::default()));
        round_trip(WireResponse::Metrics(WireMetricsReply {
            counters: vec![
                ("rpq_requests_total".to_owned(), 42),
                ("rpq_request_errors_total".to_owned(), 1),
            ],
            gauges: vec![("rpq_store_runs".to_owned(), 6)],
            histograms: vec![(
                "rpq_request_micros".to_owned(),
                WireHistogram {
                    buckets: vec![0, 1, 2, 3],
                    count: 6,
                    sum: 19,
                },
            )],
            notes: vec![("config_warning".to_owned(), "bad kernel name".to_owned())],
            slow: vec![WireSlowQuery {
                query: "_* a _*".to_owned(),
                fingerprint: "00ab00cd".to_owned(),
                kernel: "auto".to_owned(),
                closure_pairs: 1,
                closure_bits: 0,
                closure_scc: 2,
                stages: vec![("eval".to_owned(), 950)],
                total_micros: 1200,
            }],
        }));
        round_trip(WireResponse::Stats(WireStatsReply {
            retries: 4,
            config_warnings: 1,
            ..WireStatsReply::default()
        }));
    }

    #[test]
    fn v6_strategy_and_delta_stream_frames_round_trip() {
        round_trip(WireRequest::Query(QuerySpec {
            query: "a+".to_owned(),
            policy: String::new(),
            strategy: "materialized".to_owned(),
            stages: true,
            run: RunAddr::Index(0),
            mode: WireMode::EntryExit,
        }));
        round_trip(WireResponse::DeltaStream {
            seq: 9,
            added: WireResult::Pairs(Vec::new()),
        });
        round_trip(WireResponse::Stats(WireStatsReply {
            strategy_lazy: 12,
            strategy_materialized: 30,
            lazy_expansions: 4096,
            ..WireStatsReply::default()
        }));
    }

    #[test]
    fn v7_condensation_and_plan_cache_counters_round_trip() {
        round_trip(WireResponse::Stats(WireStatsReply {
            condensations_computed: 3,
            condensations_reused: 9,
            plan_reloads: 2,
            plan_rebuilds: 1,
            ..WireStatsReply::default()
        }));
    }

    #[test]
    fn metrics_reply_converts_to_a_mergeable_snapshot() {
        let registry = rpq_obs::Registry::new();
        registry.counter("rpq_requests_total").add(5);
        registry.gauge("rpq_store_runs").set(3);
        registry.histogram("rpq_request_micros").record(100);
        registry.histogram("rpq_request_micros").record(7);
        registry.note("config_warning", "x");
        let snap = registry.snapshot();
        let wire = WireMetricsReply::from_snapshot(&snap, Vec::new());
        assert_eq!(wire.to_snapshot(), snap);
        // Merging two wire-rebuilt snapshots doubles counters and
        // histogram counts — the fleet-aggregation path.
        let mut merged = wire.to_snapshot();
        merged.merge(&wire.to_snapshot());
        assert_eq!(merged.counter("rpq_requests_total"), 10);
        assert_eq!(
            merged.histogram("rpq_request_micros").map(|h| h.count),
            Some(4)
        );
    }

    #[test]
    fn chunks_reassemble_exactly() {
        let mut acc = WireResult::Pairs(Vec::new());
        acc.absorb_chunk(WireResult::Pairs(vec![(0, 1), (0, 2)]))
            .unwrap();
        acc.absorb_chunk(WireResult::Pairs(vec![(1, 2)])).unwrap();
        assert_eq!(acc, WireResult::Pairs(vec![(0, 1), (0, 2), (1, 2)]));
        // Kind mismatch is an error, not a silent drop.
        assert!(acc.absorb_chunk(WireResult::Nodes(vec![9])).is_err());
        // empty_like keeps the kind (and, for Bool, the verdict).
        assert_eq!(
            WireResult::Pairs(vec![(5, 6)]).empty_like(),
            WireResult::Pairs(Vec::new())
        );
        assert_eq!(WireResult::Bool(true).empty_like(), WireResult::Bool(true));
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        let good = encode_frame(&WireRequest::Ping).unwrap();
        // Clean EOF before any byte.
        assert!(read_message::<WireRequest>(&mut &[][..]).unwrap().is_none());
        // Truncation at every prefix errors (except length 0 = clean EOF).
        for cut in 1..good.len() {
            assert!(
                read_message::<WireRequest>(&mut &good[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(read_message::<WireRequest>(&mut &bad[..]).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(read_message::<WireRequest>(&mut &bad[..]).is_err());
        // A length prefix past the cap is refused before any allocation.
        let mut bad = good.clone();
        bad[5..9].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_message::<WireRequest>(&mut &bad[..]).is_err());
        // Garbage payload of the advertised length.
        let mut bad = good;
        for b in bad.iter_mut().skip(9) {
            *b = 0xFF;
        }
        assert!(read_message::<WireRequest>(&mut &bad[..]).is_err());
    }

    #[test]
    fn oversized_messages_are_refused_before_any_byte_is_written() {
        // A payload past MAX_FRAME must error cleanly with nothing on
        // the wire — the peer's connection stays in sync.
        let huge = "x".repeat(MAX_FRAME + 1024);
        let mut sink = Vec::new();
        let err = write_message(&mut sink, &huge).unwrap_err();
        assert!(matches!(err, RpqError::Invalid(_)), "{err:?}");
        assert!(err.to_string().contains("frame cap"), "{err}");
        assert!(sink.is_empty(), "nothing may be written on refusal");
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(error_kind(&RpqError::invalid("x")), "invalid");
        assert_eq!(
            error_kind(&RpqError::io(
                "x",
                std::io::Error::new(std::io::ErrorKind::NotFound, "y")
            )),
            "io"
        );
    }
}
