#![warn(missing_docs)]

//! A concurrent RPQ query service over warm run stores.
//!
//! The paper's premise is that workflow provenance is queried
//! *repeatedly, by many users, over a fixed corpus of runs* (Section
//! VII's stored-index workloads). `rpq-core` and `rpq-store` built the
//! substrate — a `Send + Sync` [`Session`](rpq_core::Session) with
//! plan/index caches and a [`RunStore`](rpq_store::RunStore) that
//! reloads warm artifacts — and this crate puts a socket in front of
//! it:
//!
//! * [`protocol`] — a small length-prefixed binary protocol (the run
//!   store's codec dialect: magic/version header, varints,
//!   allocation-capped decode) with one request variant per
//!   [`QueryRequest`](rpq_core::QueryRequest) mode, run addressing by
//!   store fingerprint, and responses carrying outcomes plus
//!   per-request evaluation metadata and timing;
//! * [`server`] — a TCP server over a bounded worker pool (hand-rolled
//!   `std::net` accept loop, mirroring the scoped-pool style of the
//!   batch executor) with admission control: bounded waiting queue,
//!   configurable max in-flight, graceful [`Overloaded`] refusals, a
//!   stats verb snapshotting session/store/service counters, and clean
//!   SIGTERM/ctrl-c shutdown — plus the protocol-v3 live verbs:
//!   `Append` grows an open run (the store maintains its indexes
//!   incrementally, the session refreshes at fingerprint granularity)
//!   and `Subscribe` stands a query up over it, pushing only *newly
//!   derived* answers as appends land;
//! * [`client`] — [`ServeClient`], the blocking library client the
//!   CLI's `rpq request` verb and the `servebench` load generator are
//!   built on.
//!
//! [`Overloaded`]: protocol::WireResponse::Overloaded
//!
//! Start a server, query it, stop it — all in-process:
//!
//! ```
//! use rpq_serve::{protocol::*, ServeClient, ServeConfig, Server};
//! use rpq_store::RunStore;
//! use std::sync::Arc;
//!
//! // A store with one run.
//! let dir = std::env::temp_dir().join(format!("rpq_serve_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
//! let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
//! let run = rpq_labeling::RunBuilder::new(&spec).seed(1).target_edges(60).build().unwrap();
//! store.ingest(&run).unwrap();
//!
//! // Bind on an ephemeral port and serve from a background thread.
//! let server = Server::bind(store, &ServeConfig::default()).unwrap();
//! server.warm().unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.shutdown_handle();
//! let serving = std::thread::spawn(move || server.run(None));
//!
//! // Query it over loopback.
//! let mut client = ServeClient::connect(addr).unwrap();
//! let outcome = client
//!     .query(QuerySpec {
//!         query: "_*".to_owned(),
//!         policy: String::new(),
//!         strategy: String::new(),
//!         run: RunAddr::Index(0),
//!         stages: false,
//!         mode: WireMode::EntryExit,
//!     })
//!     .unwrap();
//! assert_eq!(outcome.result, WireResult::Bool(true));
//! assert!(client.stats().unwrap().requests >= 1);
//!
//! handle.shutdown();
//! serving.join().unwrap();
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod client;
pub mod faults;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod signals;

pub use client::ServeClient;
pub use protocol::{
    QuerySpec, RunAddr, WireAppended, WireHistogram, WireMetricsReply, WireMode, WireOutcome,
    WireRequest, WireResponse, WireResult, WireRunInfo, WireSlowQuery, WireStatsReply,
};
pub use retry::RetryPolicy;
pub use server::{ServeConfig, ServeReport, Server, ShutdownHandle};
