//! SIGTERM/SIGINT → an `AtomicBool`, with no libc crate.
//!
//! The accept loop polls a flag every ~10 ms; all a signal needs to do
//! is raise it. `std` links the platform C library anyway, so the one
//! symbol required (`signal(2)`) is declared directly — storing to a
//! static `AtomicBool` is async-signal-safe, and nothing else happens
//! in the handler.

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide termination flag the installed handlers raise.
static TERMINATION: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn raise_flag(_signum: i32) {
    TERMINATION.store(true, Ordering::Relaxed);
}

/// Install SIGTERM and SIGINT handlers that raise a process-wide flag,
/// and return that flag for `Server::run` to poll. Idempotent; on
/// non-unix targets the flag is returned uninstalled (ctrl-c then
/// terminates the process the default way).
pub fn install_termination_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, raise_flag as *const () as usize);
            signal(SIGTERM, raise_flag as *const () as usize);
        }
    }
    &TERMINATION
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn a_raised_signal_sets_the_flag() {
        let flag = install_termination_flag();
        assert!(!flag.load(Ordering::Relaxed));
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        unsafe {
            raise(15);
        }
        assert!(flag.load(Ordering::Relaxed));
        // Reset for any other test in this process.
        TERMINATION.store(false, Ordering::Relaxed);
    }
}
