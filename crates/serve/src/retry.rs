//! Retry pacing shared by every reconnect/failover path in the
//! serving tier: capped exponential backoff with deterministic jitter.
//!
//! [`ServeClient::connect_with_retry`](crate::ServeClient::connect_with_retry)
//! paces its connect attempts with the [`RetryPolicy::default`], and the
//! router front tier reuses the same struct between replica failovers —
//! one policy, one shape of graph-wide load under incident recovery.
//!
//! Jitter is *deterministic*: a hash of `(attempt, salt)` spreads
//! concurrent retriers without pulling in a randomness dependency, and
//! makes every backoff schedule reproducible in tests. Distinct salts
//! (e.g. a connection id) decorrelate clients that fail at the same
//! instant; equal salts replay the same schedule exactly.

use std::time::Duration;

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) sleeps `min(base * multiplier^n, cap)`,
/// stretched by up to `jitter` (a fraction in `[0, 1]`) of itself,
/// where the stretch is hashed from `(n, salt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Sleep before the second attempt (the first retry).
    pub base: Duration,
    /// Upper bound on any single sleep, jitter included.
    pub cap: Duration,
    /// Growth factor between consecutive attempts.
    pub multiplier: f64,
    /// Fraction of the backoff added as deterministic jitter, in
    /// `[0, 1]`. Zero replays the bare exponential schedule.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// 20 ms doubling to a 1 s cap with 50 % jitter — snappy enough
    /// for test harnesses racing a server bind, tame enough that a
    /// thousand clients re-finding a restarted backend do not arrive
    /// in lockstep.
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(20),
            cap: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A jitter-free policy — exact, reproducible sleeps for tests
    /// that assert on timing.
    pub fn fixed(base: Duration, cap: Duration) -> RetryPolicy {
        RetryPolicy {
            base,
            cap,
            multiplier: 2.0,
            jitter: 0.0,
        }
    }

    /// How long to sleep before retry `attempt` (0-based), with the
    /// jitter for this `(attempt, salt)` pair applied. Monotone in
    /// `attempt` up to the cap; never exceeds `cap`.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.base.as_secs_f64();
        let cap = self.cap.as_secs_f64();
        // multiplier^attempt without powf surprises for huge attempts:
        // saturate at the cap as soon as the product passes it.
        let mut backoff = base;
        for _ in 0..attempt {
            backoff *= self.multiplier;
            if backoff >= cap {
                backoff = cap;
                break;
            }
        }
        let unit = jitter_unit(attempt, salt);
        let stretched = backoff * (1.0 + self.jitter.clamp(0.0, 1.0) * unit);
        Duration::from_secs_f64(stretched.min(cap))
    }

    /// Sleep for [`RetryPolicy::delay`] of this attempt.
    pub fn pause(&self, attempt: u32, salt: u64) {
        let delay = self.delay(attempt, salt);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

/// A deterministic value in `[0, 1)` hashed from `(attempt, salt)` —
/// splitmix64's finalizer, the same mixer the workload generators use,
/// so two retriers with different salts decorrelate immediately.
fn jitter_unit(attempt: u32, salt: u64) -> f64 {
    let mut x = salt
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt));
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::fixed(Duration::from_millis(10), Duration::from_millis(100));
        assert_eq!(policy.delay(0, 0), Duration::from_millis(10));
        assert_eq!(policy.delay(1, 0), Duration::from_millis(20));
        assert_eq!(policy.delay(2, 0), Duration::from_millis(40));
        assert_eq!(policy.delay(3, 0), Duration::from_millis(80));
        assert_eq!(policy.delay(4, 0), Duration::from_millis(100));
        // Far past the cap: still the cap, no overflow.
        assert_eq!(policy.delay(1000, 0), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_salt_sensitive() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            for salt in [0u64, 1, 42, u64::MAX] {
                let a = policy.delay(attempt, salt);
                let b = policy.delay(attempt, salt);
                assert_eq!(a, b, "same (attempt, salt) must replay the same delay");
                assert!(a <= policy.cap, "jitter must never pierce the cap");
                let floor = policy.delay(attempt, salt).min(a);
                assert!(floor >= policy.base.min(policy.cap) || attempt == 0);
            }
        }
        // Different salts decorrelate: at least one early attempt
        // differs between two clients.
        let diverged = (0..4).any(|attempt| policy.delay(attempt, 1) != policy.delay(attempt, 2));
        assert!(diverged, "salts 1 and 2 produced identical schedules");
    }
}
