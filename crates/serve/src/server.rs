//! The query server: accept loop, bounded worker pool, admission
//! control.
//!
//! One [`Server`] owns one shared [`Session`] and one [`RunStore`]:
//! the session's plan and per-run caches are `Send + Sync`, so every
//! worker thread evaluates straight off the same warm state — the
//! paper's *compile once, evaluate many* economics stretched across a
//! socket. Concurrency is a hand-rolled pool in the style of
//! `rpq_core`'s batch executor (`std::thread::scope` + shared queue),
//! not an async runtime: connections are few and CPU-bound evaluation
//! dominates, so thread-per-worker with a bounded waiting room is both
//! simpler and measurably sufficient (see `BENCH_serve.json`).
//!
//! **Admission control.** At most `workers + queue` connections are
//! live at once, tracked by a per-connection permit released on close.
//! A connection beyond that is answered with one
//! [`WireResponse::Overloaded`] frame and closed — a graceful refusal
//! the client can see and back off from, never a silently dropped
//! socket.
//!
//! **Readiness loop.** Idle keep-alive connections do not pin workers:
//! a worker that sees no request for a short grace period *parks* the
//! connection with a poller thread, which scans parked sockets with
//! non-blocking peeks, closes the ones idle past `idle_timeout`, and
//! hands a connection back to the worker queue the moment its next
//! request's first byte arrives. Busy connections stay on their worker
//! between requests, so closed-loop throughput is unchanged.
//! Subscriptions still pin a worker — push mode is the documented
//! exception.
//!
//! **Deadlines.** A peer that stalls *inside* a request frame, or that
//! stops draining a response, is cut off after the configured
//! [`ServeConfig::deadline`] — a slowloris cannot hold a worker past
//! it. Outcomes whose result exceeds [`ServeConfig::chunk_entries`]
//! stream as one [`WireResponse::OutcomeStream`] header plus bounded
//! [`WireResponse::Chunk`] frames instead of one huge frame.
//!
//! **Shutdown.** The accept loop stops when the shutdown flag rises —
//! via [`ShutdownHandle::shutdown`], the protocol's
//! [`WireRequest::Shutdown`] verb, or a SIGTERM/SIGINT flag installed
//! by the CLI ([`crate::signals`]). Workers finish the request in
//! flight, drain the waiting queue, the poller drops parked
//! connections, and the server returns its final [`ServeReport`].

use crate::protocol::{
    self, error_kind, QuerySpec, RunAddr, WireAppended, WireMetricsReply, WireOutcome, WireRequest,
    WireResponse, WireResult, WireRunInfo, WireStatsReply,
};
use rpq_core::{EvalStrategy, PreparedQuery, RpqError, Session, SubqueryPolicy};
use rpq_labeling::EventBatch;
use rpq_obs::{Counter, Histogram, MetricsSnapshot, Registry, SlowLog, SlowQuery};
use rpq_store::{OpenRun, RunId, RunStore};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Worker read-timeout tick: how often a blocked read wakes to poll
/// the shutdown flag (and, between frames, the idle grace).
const READ_TICK: Duration = Duration::from_millis(50);

/// How long a worker waits between frames before parking the
/// connection with the poller. Long enough that a closed-loop client
/// issuing back-to-back requests never parks; short enough that an
/// idle keep-alive releases its worker promptly.
const IDLE_GRACE: Duration = Duration::from_millis(50);

/// The poller's scan cadence over parked connections.
const POLL_TICK: Duration = Duration::from_millis(5);

/// Server configuration (the CLI's `rpq serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads = max in-flight connections; 0 means one per
    /// available CPU.
    pub workers: usize,
    /// Waiting-connection bound beyond the in-flight workers;
    /// connections past it receive [`WireResponse::Overloaded`].
    pub queue: usize,
    /// LRU bound for the session and store caches (`None` = unbounded).
    pub cache: Option<usize>,
    /// Default subquery policy for requests that don't name one.
    pub policy: SubqueryPolicy,
    /// Default evaluation strategy for requests that don't name one
    /// ([`QuerySpec::strategy`]). The CLI seeds this from `--strategy`
    /// / `RPQ_EVAL_STRATEGY`; `Auto` lets the cost model pick per
    /// request.
    pub strategy: EvalStrategy,
    /// Idle keep-alive bound: a connection that sends no request for
    /// this long is closed cleanly. Idle connections are parked with
    /// the readiness poller (they pin no worker); this bounds how long
    /// one may stay parked. Distinct from `deadline` — that one
    /// polices a peer that stops *inside* a frame; this one polices a
    /// peer that stops *between* frames. Subscriptions are exempt (a
    /// quiet watcher is the normal state).
    pub idle_timeout: Duration,
    /// Per-request deadline: a peer that stalls mid-frame, or stops
    /// draining a response, is cut off after this long. The bound a
    /// fleet client can rely on — no request hangs past it.
    pub deadline: Duration,
    /// Result entries (pairs/nodes) per streamed chunk: an outcome
    /// larger than this ships as an [`WireResponse::OutcomeStream`]
    /// header plus `Chunk` frames of at most this many entries, so
    /// `AllPairs` over a huge run never builds one 64 MiB frame.
    pub chunk_entries: usize,
    /// Slow-query threshold in milliseconds: a query whose server-side
    /// time clears it is captured in the slow-query ring (query text,
    /// run fingerprint, kernel/closure counts, stage breakdown) and
    /// shipped with [`WireResponse::Metrics`]. `None` disables capture.
    pub slow_ms: Option<u64>,
    /// Optional second listener that answers every TCP connection with
    /// the Prometheus-style text exposition of the metrics registry and
    /// closes — scrapeable with `curl`/`nc`, no protocol needed.
    pub metrics_addr: Option<String>,
    /// Master observability switch: `false` skips registry recording,
    /// per-query tracing frames, and slow-log capture (the bench
    /// overhead guard measures this delta). Metrics verbs still answer,
    /// from whatever was recorded while observation was on.
    pub observe: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue: 64,
            cache: None,
            policy: SubqueryPolicy::CostBased,
            strategy: rpq_core::eval_strategy(),
            idle_timeout: Duration::from_secs(60),
            deadline: Duration::from_secs(30),
            chunk_entries: 65_536,
            slow_ms: None,
            metrics_addr: None,
            observe: true,
        }
    }
}

/// The server's registry handles, resolved once at bind time so the
/// request path records with single relaxed atomic ops — these are thin
/// views over the registry, which remains the source of truth for
/// stats, exposition, and fleet merging.
struct Counters {
    accepted: &'static Counter,
    requests: &'static Counter,
    overloaded: &'static Counter,
    request_errors: &'static Counter,
    subscriptions: &'static Counter,
    /// End-to-end server-side query latency, µs.
    request_micros: &'static Histogram,
    /// Response serialization + write time, µs (a stage that cannot
    /// ride in its own response, so it lives in the registry only).
    serialize_micros: &'static Histogram,
    /// Per-stage histograms, pre-resolved for every name the tracing
    /// layer emits — a name-keyed registry lookup (lock + hash +
    /// format!) per stage per request costs double-digit percent at
    /// loopback request rates.
    stage_micros: Vec<(&'static str, &'static Histogram)>,
}

/// Every stage name the serving path can report (tracing spans in
/// `Session::evaluate` — including the lazy engine's product-search
/// span — the store loader, and the server itself).
const STAGE_NAMES: [&str; 6] = ["plan", "index", "csr", "eval", "lazy_expand", "store_load"];

impl Counters {
    fn new(registry: &Registry) -> Counters {
        Counters {
            accepted: registry.counter("rpq_connections_accepted_total"),
            requests: registry.counter("rpq_requests_total"),
            overloaded: registry.counter("rpq_overloaded_total"),
            request_errors: registry.counter("rpq_request_errors_total"),
            subscriptions: registry.counter("rpq_subscriptions_total"),
            request_micros: registry.histogram("rpq_request_micros"),
            serialize_micros: registry.histogram("rpq_serialize_micros"),
            stage_micros: STAGE_NAMES
                .iter()
                .map(|name| {
                    (
                        *name,
                        registry.histogram(&format!("rpq_stage_micros{{stage=\"{name}\"}}")),
                    )
                })
                .collect(),
        }
    }

    /// The histogram for one stage: a linear scan over the handful of
    /// known names, falling back to a registry lookup for stages added
    /// by future layers.
    fn stage_histogram(&self, registry: &Registry, name: &str) -> &'static Histogram {
        match self.stage_micros.iter().find(|(n, _)| *n == name) {
            Some((_, histogram)) => histogram,
            None => registry.histogram(&format!("rpq_stage_micros{{stage=\"{name}\"}}")),
        }
    }
}

/// What the server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Connections refused by admission control.
    pub overloaded: u64,
    /// Requests answered with an error response.
    pub request_errors: u64,
    /// Median query latency over the server's lifetime, µs (log₂-bucket
    /// upper bound; 0 when no query ran).
    pub p50_us: u64,
    /// 99th-percentile query latency, µs.
    pub p99_us: u64,
}

/// A clonable handle that stops a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Result of one patient read: the buffer was filled, the connection
/// is done (peer EOF / shutdown while idle), or the idle grace passed
/// between frames and the connection should be parked.
enum ReadOutcome {
    Filled,
    Done,
    Idle,
}

/// What one request-read produced for the connection loop.
enum ReadReq {
    Request(WireRequest),
    Closed,
    Idle,
}

/// One live-connection permit, counted against `workers + queue`.
/// Dropping it (connection closed anywhere — worker, poller, queue
/// drain) releases the slot.
struct Permit {
    live: Arc<AtomicUsize>,
}

impl Permit {
    fn acquire(live: &Arc<AtomicUsize>) -> Permit {
        live.fetch_add(1, Ordering::Relaxed);
        Permit {
            live: Arc::clone(live),
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One admitted connection travelling between the accept loop, the
/// worker pool and the readiness poller.
struct Conn {
    stream: TcpStream,
    /// When the connection last went idle — the poller closes it once
    /// this is `idle_timeout` ago.
    idle_since: Instant,
    _permit: Permit,
}

/// How a subscription ended: back to request/response (clean
/// `Unsubscribe`) or the connection is done (disconnect, shutdown
/// drain, transport error).
enum SubExit {
    Resume,
    Close,
}

/// One non-blocking peek at a subscribed connection's read side.
enum SubPoll {
    /// Nothing pending.
    Quiet,
    /// The peer closed.
    Closed,
    /// A complete request frame arrived.
    Request(WireRequest),
}

/// The dispatch queue between the accept loop / poller and the
/// workers. Admission is enforced by [`Permit`]s, so the queue itself
/// only needs to bound against that same `workers + queue` total.
struct ConnQueue {
    state: Mutex<(VecDeque<Conn>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue a connection for a worker, or hand it back when the
    /// room is full (cannot happen while permits bound the live count,
    /// but the queue stays safe on its own).
    fn push(&self, conn: Conn) -> Result<(), Conn> {
        let mut state = self.state.lock().expect("conn queue lock");
        if state.0.len() >= self.capacity {
            return Err(conn);
        }
        state.0.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Next waiting connection; blocks, and returns `None` once the
    /// queue is closed *and* drained.
    fn pop(&self) -> Option<Conn> {
        let mut state = self.state.lock().expect("conn queue lock");
        loop {
            if let Some(conn) = state.0.pop_front() {
                return Some(conn);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("conn queue wait");
        }
    }

    fn close(&self) {
        self.state.lock().expect("conn queue lock").1 = true;
        self.ready.notify_all();
    }
}

/// A bound TCP query service over one warm run store.
pub struct Server {
    listener: TcpListener,
    store: Arc<RunStore>,
    session: Arc<Session>,
    workers: usize,
    queue_cap: usize,
    cache: Option<usize>,
    policy: SubqueryPolicy,
    strategy: EvalStrategy,
    idle_timeout: Duration,
    deadline: Duration,
    chunk_entries: usize,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    counters: Counters,
    slow_log: SlowLog,
    metrics_listener: Option<TcpListener>,
    observe: bool,
    /// Runs held open for streaming: the store's own registry keeps
    /// only weak handles, so the server pins each touched run's
    /// [`OpenRun`] for its lifetime — growth sequence numbers stay
    /// monotonic across requests, and appenders and subscribers on
    /// different connections share one growth signal.
    open_runs: Mutex<HashMap<RunId, Arc<OpenRun>>>,
}

impl Server {
    /// Bind the listener and assemble the shared session. The session
    /// shares the store's specification, so prepared plans and stored
    /// runs always agree; `config.cache` bounds both the session's
    /// per-run caches and the store's in-memory caches (bounding one
    /// side only would leave the other retaining the full corpus).
    pub fn bind(store: RunStore, config: &ServeConfig) -> Result<Server, RpqError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| RpqError::io(format!("cannot bind {}", config.addr), e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RpqError::io("cannot set the listener non-blocking", e))?;
        let store = Arc::new(match config.cache {
            Some(capacity) => store.with_cache_capacity(capacity),
            None => store,
        });
        // The store doubles as the session's durable plan tier: plans
        // compiled here persist beside the index artifacts, and a
        // restarted process reloads them instead of recompiling.
        let session = Session::new(store.spec_arc())
            .with_plan_store(Arc::clone(&store) as Arc<dyn rpq_core::PlanStore>);
        let session = match config.cache {
            Some(capacity) => session.with_cache_capacity(capacity),
            None => session,
        };
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)
                    .map_err(|e| RpqError::io(format!("cannot bind metrics address {addr}"), e))?;
                l.set_nonblocking(true)
                    .map_err(|e| RpqError::io("cannot set the metrics listener non-blocking", e))?;
                Some(l)
            }
            None => None,
        };
        let registry = Arc::new(Registry::new());
        let counters = Counters::new(&registry);
        let slow_log = match config.slow_ms {
            Some(ms) => SlowLog::new(ms.saturating_mul(1_000), rpq_obs::DEFAULT_CAPACITY),
            None => SlowLog::disabled(),
        };
        Ok(Server {
            listener,
            store,
            session: Arc::new(session),
            workers,
            queue_cap: config.queue.max(1),
            cache: config.cache,
            policy: config.policy,
            strategy: config.strategy,
            idle_timeout: config.idle_timeout,
            deadline: config.deadline,
            chunk_entries: config.chunk_entries.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
            registry,
            counters,
            slow_log,
            metrics_listener,
            observe: config.observe,
            open_runs: Mutex::new(HashMap::new()),
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn local_addr(&self) -> Result<SocketAddr, RpqError> {
        self.listener
            .local_addr()
            .map_err(|e| RpqError::io("cannot read the bound address", e))
    }

    /// The bound metrics-exposition address, when
    /// [`ServeConfig::metrics_addr`] was set.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Worker threads the server will run.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Seed the session caches with stored runs' persisted artifacts
    /// (building and persisting any that are missing), so the first
    /// query of each warmed run hits instead of rebuilding. When the
    /// caches are LRU-bounded, only the *newest* `cache` runs are
    /// warmed — seeding more would decode artifacts straight into
    /// eviction. Also re-prepares every persisted compiled plan, so the
    /// restarted server answers its standing queries plan-warm from the
    /// first request. Returns the number of runs warmed.
    pub fn warm(&self) -> Result<usize, RpqError> {
        let ids = self.store.ids();
        let keep = self.cache.unwrap_or(usize::MAX).min(ids.len());
        let mut warmed = 0;
        for &id in &ids[ids.len() - keep..] {
            let run = self.store.run(id)?;
            let (tag, csr) = self.store.artifacts(id)?;
            self.session.seed_run_cache(&run, tag, Some(csr));
            warmed += 1;
        }
        // Pull persisted plans through the store tier into the session
        // cache. Best-effort: a plan whose query no longer parses (or
        // whose persisted bytes fail validation) recompiles on demand.
        for (source, policy) in self.store.persisted_plans() {
            let _ = self.session.prepare_with(&source, policy);
        }
        Ok(warmed)
    }

    /// Serve until shutdown (handle, protocol verb, or the optional
    /// `external` flag — the CLI passes its SIGTERM/SIGINT flag here).
    /// Blocks the calling thread; workers run scoped inside.
    pub fn run(self, external: Option<&AtomicBool>) -> ServeReport {
        let capacity = self.workers + self.queue_cap;
        let queue = ConnQueue::new(capacity);
        // Connections a worker set aside between requests, awaiting
        // the poller's pickup.
        let parked_inbox: Mutex<Vec<Conn>> = Mutex::new(Vec::new());
        let live = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| {
                    while let Some(conn) = queue.pop() {
                        self.serve_connection(conn, &parked_inbox);
                    }
                });
            }
            // The readiness poller: watches parked idle connections so
            // they pin no worker, and re-dispatches them on their next
            // request's first byte.
            scope.spawn(|| self.poll_parked(&queue, &parked_inbox));
            // The metrics-exposition listener: any TCP connection gets
            // one plain-text registry dump and a close.
            if self.metrics_listener.is_some() {
                scope.spawn(|| self.serve_metrics_scrapes());
            }

            // Accept loop: non-blocking accept polled against the
            // shutdown flags, so SIGTERM is noticed within ~10 ms.
            loop {
                if external.is_some_and(|f| f.load(Ordering::Relaxed)) {
                    // Propagate: workers and the poller poll only the
                    // internal flag, and they must see the external
                    // (SIGTERM) one too or the scope would never join.
                    self.shutdown.store(true, Ordering::Relaxed);
                }
                if self.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.counters.accepted.incr();
                        // Admission control: refuse past `workers +
                        // queue` *live* connections (idle parked ones
                        // included — each holds resources either way).
                        if live.load(Ordering::Relaxed) >= capacity {
                            self.counters.overloaded.incr();
                            self.refuse(stream);
                            continue;
                        }
                        let conn = Conn {
                            stream,
                            idle_since: Instant::now(),
                            _permit: Permit::acquire(&live),
                        };
                        if let Err(rejected) = queue.push(conn) {
                            self.counters.overloaded.incr();
                            self.refuse(rejected.stream);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Transient accept failure (e.g. aborted
                        // handshake): back off briefly and keep serving.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            queue.close();
        });
        let latency = self.counters.request_micros.snapshot();
        ServeReport {
            accepted: self.counters.accepted.get(),
            requests: self.counters.requests.get(),
            overloaded: self.counters.overloaded.get(),
            request_errors: self.counters.request_errors.get(),
            p50_us: latency.p50(),
            p99_us: latency.p99(),
        }
    }

    /// The metrics-exposition loop: accept, dump the registry's text
    /// exposition, close. Non-blocking accepts polled against the
    /// shutdown flag, same as the main listener; a stalled scraper is
    /// cut off by a short write timeout.
    fn serve_metrics_scrapes(&self) {
        let listener = self
            .metrics_listener
            .as_ref()
            .expect("metrics listener present when this loop runs");
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let text = self.metrics_snapshot().to_text();
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.write_all(text.as_bytes());
                    let _ = stream.flush();
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Graceful refusal: one Overloaded frame, then close. Bounded
    /// write timeout so a dead peer cannot wedge the accept loop.
    fn refuse(&self, mut stream: TcpStream) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        if protocol::write_message(
            &mut stream,
            &WireResponse::Overloaded {
                queue: self.queue_cap as u64,
            },
        )
        .is_err()
        {
            return;
        }
        // The client may already have written a request; closing with
        // those bytes unread would turn the close into a TCP RST, which
        // on some stacks discards the Overloaded frame before the
        // client reads it. Signal end-of-responses, then briefly drain
        // the read side so the refusal survives in order.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut sink = [0u8; 4096];
        for _ in 0..16 {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// The readiness poller: owns every parked (idle keep-alive)
    /// connection. Non-blocking peeks detect the next request's first
    /// byte (→ back to the worker queue), a clean close (→ drop), or
    /// continued silence (→ close once `idle_timeout` passes). On
    /// shutdown the parked set is dropped, draining idle connections
    /// without any worker involvement.
    fn poll_parked(&self, queue: &ConnQueue, parked_inbox: &Mutex<Vec<Conn>>) {
        let mut parked: Vec<Conn> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            parked.append(&mut parked_inbox.lock().expect("parked inbox lock"));
            let mut i = 0;
            while i < parked.len() {
                let mut probe = [0u8; 1];
                match parked[i].stream.peek(&mut probe) {
                    // EOF: the peer left while parked.
                    Ok(0) => {
                        parked.swap_remove(i);
                    }
                    // A request has begun: back to blocking mode and
                    // onto the worker queue. The byte was only peeked,
                    // so the worker reads the frame from its start.
                    Ok(_) => {
                        let conn = parked.swap_remove(i);
                        if conn.stream.set_nonblocking(false).is_ok() {
                            // Queue overflow cannot happen (permits
                            // bound live connections to its capacity);
                            // if it somehow does, the push hands the
                            // connection back and it is dropped.
                            let _ = queue.push(conn);
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::Interrupted =>
                    {
                        if parked[i].idle_since.elapsed() > self.idle_timeout {
                            parked.swap_remove(i);
                        } else {
                            i += 1;
                        }
                    }
                    Err(_) => {
                        parked.swap_remove(i);
                    }
                }
            }
            std::thread::sleep(POLL_TICK);
        }
    }

    /// Serve requests on one connection until the peer closes, a
    /// transport error occurs, shutdown drains it, or it goes idle —
    /// idle connections are parked with the poller so they pin no
    /// worker.
    fn serve_connection(&self, mut conn: Conn, parked_inbox: &Mutex<Vec<Conn>>) {
        let _ = conn.stream.set_nonblocking(false);
        // Short read timeout: between requests the worker wakes to
        // check the shutdown flag and the idle grace instead of
        // blocking forever.
        let _ = conn.stream.set_read_timeout(Some(READ_TICK));
        // A peer that stops draining its response is cut off at the
        // deadline, same as one that stalls sending its request.
        let _ = conn.stream.set_write_timeout(Some(self.deadline));
        let _ = conn.stream.set_nodelay(true);
        loop {
            // Checked between requests too: a continuously busy
            // connection never hits the idle read path, and must still
            // drain (request in flight finished, response written).
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let request = match self.read_request(&mut conn.stream) {
                Ok(ReadReq::Request(request)) => request,
                // Peer closed, or shutdown drained the idle connection.
                Ok(ReadReq::Closed) => return,
                // Idle past the grace: park with the poller and free
                // this worker for connections with work to do.
                Ok(ReadReq::Idle) => {
                    conn.idle_since = Instant::now() - IDLE_GRACE;
                    if conn.stream.set_nonblocking(true).is_ok() {
                        parked_inbox.lock().expect("parked inbox lock").push(conn);
                    }
                    return;
                }
                Err(e) => {
                    // Malformed frame: report once, then drop the
                    // connection (framing is lost).
                    let _ = protocol::write_message(
                        &mut conn.stream,
                        &WireResponse::Error {
                            kind: error_kind(&e).to_owned(),
                            message: e.to_string(),
                        },
                    );
                    return;
                }
            };
            self.counters.requests.incr();
            // Subscribe flips the connection into push mode — it needs
            // the stream itself, so it bypasses the one-shot dispatch.
            let request = match request {
                WireRequest::Subscribe(spec) => {
                    match self.serve_subscription(&mut conn.stream, spec) {
                        SubExit::Resume => continue,
                        SubExit::Close => return,
                    }
                }
                other => other,
            };
            let (response, stop) = self.handle(request);
            let serialize_started = Instant::now();
            match self.write_response(&mut conn.stream, &response) {
                Ok(()) => {}
                // An Invalid write error means the response exceeded
                // the frame cap and nothing hit the wire: the
                // connection is still in sync, so substitute an error
                // response the client can act on.
                Err(e @ RpqError::Invalid(_)) => {
                    self.counters.request_errors.incr();
                    let substitute = WireResponse::Error {
                        kind: error_kind(&e).to_owned(),
                        message: e.to_string(),
                    };
                    if protocol::write_message(&mut conn.stream, &substitute).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
            if self.observe {
                self.counters
                    .serialize_micros
                    .record(serialize_started.elapsed().as_micros() as u64);
            }
            if stop {
                return;
            }
        }
    }

    /// Write one response, streaming oversized outcomes as an
    /// [`WireResponse::OutcomeStream`] header plus bounded
    /// [`WireResponse::Chunk`] frames.
    fn write_response(
        &self,
        stream: &mut TcpStream,
        response: &WireResponse,
    ) -> Result<(), RpqError> {
        if let WireResponse::Outcome(outcome) = response {
            if outcome.result.len() > self.chunk_entries {
                return self.write_streamed(stream, outcome);
            }
        }
        protocol::write_message(stream, response)
    }

    /// The chunked response path: header first (metadata plus an empty
    /// result of the right kind), then the matches in arrival-order
    /// slices of at most `chunk_entries`, the final one flagged `last`.
    fn write_streamed(
        &self,
        stream: &mut TcpStream,
        outcome: &WireOutcome,
    ) -> Result<(), RpqError> {
        let header = WireOutcome {
            result: outcome.result.empty_like(),
            ..outcome.clone()
        };
        protocol::write_message(stream, &WireResponse::OutcomeStream(header))?;
        match &outcome.result {
            WireResult::Pairs(pairs) => {
                let slices = pairs.chunks(self.chunk_entries);
                let n = slices.len();
                for (i, slice) in slices.enumerate() {
                    let frame = WireResponse::Chunk {
                        last: i + 1 == n,
                        part: WireResult::Pairs(slice.to_vec()),
                    };
                    protocol::write_message(stream, &frame)?;
                }
            }
            WireResult::Nodes(nodes) => {
                let slices = nodes.chunks(self.chunk_entries);
                let n = slices.len();
                for (i, slice) in slices.enumerate() {
                    let frame = WireResponse::Chunk {
                        last: i + 1 == n,
                        part: WireResult::Nodes(slice.to_vec()),
                    };
                    protocol::write_message(stream, &frame)?;
                }
            }
            // A one-bit verdict can never exceed the chunk bound; the
            // header already carried it, close the stream.
            WireResult::Bool(_) => {
                protocol::write_message(
                    stream,
                    &WireResponse::Chunk {
                        last: true,
                        part: outcome.result.clone(),
                    },
                )?;
            }
        }
        Ok(())
    }

    /// Read one request, waking on the read timeout to poll the
    /// shutdown flag and the idle grace.
    fn read_request(&self, stream: &mut TcpStream) -> Result<ReadReq, RpqError> {
        let mut header = [0u8; 9];
        // Patient header read: timeouts between requests are idleness,
        // not errors — but once a frame has started, a peer that stalls
        // past the deadline is cut off.
        let mut in_frame = false;
        match self.read_patient(stream, &mut header, &mut in_frame)? {
            ReadOutcome::Done => return Ok(ReadReq::Closed),
            ReadOutcome::Idle => return Ok(ReadReq::Idle),
            ReadOutcome::Filled => {}
        }
        let len = protocol::frame_len(&header)?;
        let mut payload = vec![0u8; len];
        match self.read_patient(stream, &mut payload, &mut in_frame)? {
            // `Idle` cannot surface here (`in_frame` is already set),
            // and an EOF inside the payload is an error either way.
            ReadOutcome::Done | ReadOutcome::Idle => Err(RpqError::invalid(
                "stream ended inside a frame payload".to_owned(),
            )),
            ReadOutcome::Filled => Ok(ReadReq::Request(protocol::decode_payload(&payload)?)),
        }
    }

    /// Fill `buf`, retrying read timeouts. Before any byte of the
    /// frame has arrived (`*in_frame` false), a timeout polls the
    /// shutdown flag and reports `Idle` once the parking grace passes;
    /// once inside a frame, stalls past the configured deadline are
    /// cut off. EOF before the first byte reports `Done`.
    fn read_patient(
        &self,
        stream: &mut TcpStream,
        buf: &mut [u8],
        in_frame: &mut bool,
    ) -> Result<ReadOutcome, RpqError> {
        let mut filled = 0;
        let mut stall_started: Option<Instant> = None;
        let mut idle_started: Option<Instant> = None;
        while filled < buf.len() {
            match stream.read(&mut buf[filled..]) {
                Ok(0) if !*in_frame && filled == 0 => return Ok(ReadOutcome::Done),
                Ok(0) => {
                    return Err(RpqError::invalid(
                        "stream ended inside a protocol frame".to_owned(),
                    ))
                }
                Ok(n) => {
                    filled += n;
                    *in_frame = true;
                    stall_started = None;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if !*in_frame && filled == 0 {
                        // Idle between frames: drain on shutdown, park
                        // once the grace passes — an idle connection
                        // must not pin a worker.
                        if self.shutdown.load(Ordering::Relaxed) {
                            return Ok(ReadOutcome::Done);
                        }
                        let t0 = *idle_started.get_or_insert_with(Instant::now);
                        if t0.elapsed() >= IDLE_GRACE {
                            return Ok(ReadOutcome::Idle);
                        }
                        continue;
                    }
                    let t0 = *stall_started.get_or_insert_with(Instant::now);
                    if t0.elapsed() > self.deadline {
                        return Err(RpqError::invalid(format!(
                            "peer stalled mid-frame past the {:?} deadline",
                            self.deadline
                        )));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RpqError::io("cannot read request frame", e)),
            }
        }
        Ok(ReadOutcome::Filled)
    }

    /// Dispatch one request; the bool asks the connection loop to stop.
    fn handle(&self, request: WireRequest) -> (WireResponse, bool) {
        match request {
            WireRequest::Ping => (WireResponse::Pong, false),
            WireRequest::ListRuns => (
                WireResponse::Runs(
                    self.store
                        .metas()
                        .iter()
                        .map(|m| WireRunInfo {
                            id: m.id.0,
                            fp_hi: m.fp_hi,
                            fp_lo: m.fp_lo,
                            n_nodes: m.n_nodes,
                            n_edges: m.n_edges,
                        })
                        .collect(),
                ),
                false,
            ),
            WireRequest::Stats => (WireResponse::Stats(self.stats()), false),
            WireRequest::Metrics => (WireResponse::Metrics(self.metrics_reply()), false),
            WireRequest::Shutdown => {
                self.shutdown.store(true, Ordering::Relaxed);
                (WireResponse::ShuttingDown, true)
            }
            WireRequest::Query(spec) => match self.evaluate(&spec) {
                Ok(outcome) => (WireResponse::Outcome(outcome), false),
                Err(e) => {
                    self.counters.request_errors.incr();
                    (
                        WireResponse::Error {
                            kind: error_kind(&e).to_owned(),
                            message: e.to_string(),
                        },
                        false,
                    )
                }
            },
            WireRequest::Append { run, batch } => match self.append(&run, &batch) {
                Ok(receipt) => (WireResponse::Appended(receipt), false),
                Err(e) => {
                    self.counters.request_errors.incr();
                    (
                        WireResponse::Error {
                            kind: error_kind(&e).to_owned(),
                            message: e.to_string(),
                        },
                        false,
                    )
                }
            },
            // Replication verbs: a peer (the router's sync loop, or a
            // sibling backend) fetches a stored run wholesale or pushes
            // one in. Both ride the ordinary dispatch path — the run
            // travels as one codec payload, and `Pushed`/`RunData`
            // carry the catalog epoch so the caller can gate on it.
            WireRequest::FetchRun(addr) => match self.fetch_run(&addr) {
                Ok(response) => (response, false),
                Err(e) => {
                    self.counters.request_errors.incr();
                    (
                        WireResponse::Error {
                            kind: error_kind(&e).to_owned(),
                            message: e.to_string(),
                        },
                        false,
                    )
                }
            },
            WireRequest::PushRun { run } => match self.store.ingest(&run) {
                Ok(ingested) => (
                    WireResponse::Pushed {
                        id: ingested.id.0,
                        deduplicated: u64::from(ingested.deduplicated),
                        epoch: self.store.epoch(),
                    },
                    false,
                ),
                Err(e) => {
                    self.counters.request_errors.incr();
                    (
                        WireResponse::Error {
                            kind: error_kind(&e).to_owned(),
                            message: e.to_string(),
                        },
                        false,
                    )
                }
            },
            // Subscribe is intercepted by the connection loop; an
            // Unsubscribe reaching plain dispatch has no subscription
            // standing.
            WireRequest::Subscribe(_) | WireRequest::Unsubscribe => {
                self.counters.request_errors.incr();
                (
                    WireResponse::Error {
                        kind: "invalid".to_owned(),
                        message: "no subscription is standing on this connection".to_owned(),
                    },
                    false,
                )
            }
        }
    }

    /// Evaluate one query request against the shared session, under a
    /// server-side trace frame. The frame collects the stages spent
    /// *outside* [`Session::evaluate`] — `plan` (compile or plan-cache
    /// lookup) and `store_load` (artifact decode) — while the session's
    /// own frame lands `index`/`csr`/`eval` in the outcome's metadata;
    /// the wire outcome carries the union when the request asked for
    /// it ([`QuerySpec::stages`]).
    fn evaluate(&self, spec: &QuerySpec) -> Result<WireOutcome, RpqError> {
        let started = Instant::now();
        if self.observe {
            rpq_obs::Trace::begin();
        }
        let evaluated = self.evaluate_inner(spec);
        let frame = if self.observe {
            rpq_obs::Trace::take()
        } else {
            Vec::new()
        };
        let mut outcome = evaluated?;
        let micros = started.elapsed().as_micros() as u64;
        // Merge the session's stages with the server's own frame —
        // static names throughout, so the hot path allocates no stage
        // strings. They materialize only for clients that opted in
        // ([`QuerySpec::stages`]) and for slow-log captures.
        let mut stages: rpq_obs::Stages = std::mem::take(&mut outcome.meta.stages);
        for (name, us) in frame {
            match stages.iter_mut().find(|(n, _)| *n == name) {
                Some(slot) => slot.1 += us,
                None => stages.push((name, us)),
            }
        }
        let mut wire = WireOutcome::from_outcome(&outcome, micros);
        if self.observe {
            self.observe_query(spec, &wire, &stages);
        }
        if spec.stages {
            wire.stages = stages.iter().map(|&(n, us)| (n.to_owned(), us)).collect();
        }
        Ok(wire)
    }

    /// The untimed body of [`Server::evaluate`] — separated so the
    /// trace frame opened around it is always closed, even on `?` exits.
    fn evaluate_inner(&self, spec: &QuerySpec) -> Result<rpq_core::QueryOutcome, RpqError> {
        let policy = self.resolve_policy(spec)?;
        let strategy = self.resolve_strategy(spec)?;
        let id = self.resolve(&spec.run)?;
        let run = self.store.run(id)?;
        let request = spec.mode.to_request(&run)?;
        let query = self.session.prepare_with(&spec.query, policy)?;
        Ok(self
            .session
            .evaluate_with_strategy(&query, &run, &request, strategy))
    }

    /// The request's subquery policy, or the server default when the
    /// spec leaves it empty.
    fn resolve_policy(&self, spec: &QuerySpec) -> Result<SubqueryPolicy, RpqError> {
        if spec.policy.is_empty() {
            return Ok(self.policy);
        }
        SubqueryPolicy::from_cli_name(&spec.policy).ok_or_else(|| {
            RpqError::invalid(format!(
                "invalid policy {:?}: valid policies are {}",
                spec.policy,
                SubqueryPolicy::NAMES.join(", ")
            ))
        })
    }

    /// The request's evaluation strategy, or the server default when
    /// the spec leaves it empty.
    fn resolve_strategy(&self, spec: &QuerySpec) -> Result<EvalStrategy, RpqError> {
        if spec.strategy.is_empty() {
            return Ok(self.strategy);
        }
        EvalStrategy::from_name(&spec.strategy).ok_or_else(|| {
            RpqError::invalid(format!(
                "invalid strategy {:?}: valid strategies are {}",
                spec.strategy,
                EvalStrategy::NAMES.join(", ")
            ))
        })
    }

    /// Record one evaluated query into the registry (latency and
    /// per-stage histograms) and, past the threshold, the slow-query
    /// ring.
    fn observe_query(&self, spec: &QuerySpec, wire: &WireOutcome, stages: &rpq_obs::Stages) {
        self.counters.request_micros.record(wire.micros);
        for &(name, us) in stages {
            self.counters
                .stage_histogram(&self.registry, name)
                .record(us);
        }
        if self.slow_log.qualifies(wire.micros) {
            let fingerprint = match spec.run {
                RunAddr::Fingerprint(hi, lo) => format!("{hi:016x}{lo:016x}"),
                RunAddr::Index(i) => match self.resolve(&spec.run).and_then(|id| {
                    self.store
                        .metas()
                        .iter()
                        .find(|m| m.id == id)
                        .map(|m| format!("{:016x}{:016x}", m.fp_hi, m.fp_lo))
                        .ok_or_else(|| RpqError::invalid("run vanished".to_owned()))
                }) {
                    Ok(fp) => fp,
                    Err(_) => format!("#{i}"),
                },
            };
            self.slow_log.record(SlowQuery {
                query: spec.query.clone(),
                fingerprint,
                kernel: wire.kernel.clone(),
                closures: [wire.closure_pairs, wire.closure_bits, wire.closure_scc],
                stages: stages.iter().map(|&(n, us)| (n.to_owned(), us)).collect(),
                total_micros: wire.micros,
            });
        }
    }

    /// Open a run for streaming — or return the handle already held.
    /// The first live verb on a run opens it; the handle then stays
    /// pinned until the server stops.
    fn open(&self, id: RunId) -> Result<Arc<OpenRun>, RpqError> {
        let mut open_runs = self.open_runs.lock().expect("open-run table lock");
        if let Some(open) = open_runs.get(&id) {
            return Ok(Arc::clone(open));
        }
        let open = self.store.open_run(id)?;
        open_runs.insert(id, Arc::clone(&open));
        Ok(open)
    }

    /// Serve one run wholesale for replication.
    fn fetch_run(&self, addr: &RunAddr) -> Result<WireResponse, RpqError> {
        let id = self.resolve(addr)?;
        let run = self.store.run(id)?;
        Ok(WireResponse::RunData {
            epoch: self.store.epoch(),
            run: (*run).clone(),
        })
    }

    /// Resolve a wire run address to a store id.
    fn resolve(&self, addr: &RunAddr) -> Result<RunId, RpqError> {
        match *addr {
            RunAddr::Fingerprint(hi, lo) => {
                self.store.find_by_fingerprint(hi, lo).ok_or_else(|| {
                    RpqError::invalid(format!("no stored run has fingerprint {hi:016x}{lo:016x}"))
                })
            }
            RunAddr::Index(i) => self.store.id_at(i as usize).ok_or_else(|| {
                RpqError::invalid(format!(
                    "run #{i} out of range for a {}-run store",
                    self.store.len()
                ))
            }),
        }
    }

    /// Apply an append batch to an open run, then refresh the shared
    /// session at fingerprint granularity: the pre-growth run's cache
    /// entries are invalidated (they are orphans — that fingerprint no
    /// longer names a stored run) and the freshly maintained artifacts
    /// are seeded under the grown fingerprint, so the next query over
    /// the run hits warm instead of rebuilding.
    fn append(&self, addr: &RunAddr, batch: &EventBatch) -> Result<WireAppended, RpqError> {
        let id = self.resolve(addr)?;
        let open = self.open(id)?;
        let before = open.snapshot();
        let receipt = open.append_events(batch)?;
        if receipt.seq != before.seq {
            let after = open.snapshot();
            self.session.invalidate_run(&before.run);
            self.session.seed_run_cache(
                &after.run,
                Arc::clone(&after.tag),
                Some(Arc::clone(&after.csr)),
            );
        }
        Ok(WireAppended::from_appended(&receipt))
    }

    /// Evaluate a standing query against one live snapshot.
    fn eval_snapshot(
        &self,
        query: &PreparedQuery,
        spec: &QuerySpec,
        snap: &rpq_store::LiveSnapshot,
    ) -> Result<WireResult, RpqError> {
        let request = spec.mode.to_request(&snap.run)?;
        let strategy = self.resolve_strategy(spec)?;
        let outcome = self
            .session
            .evaluate_with_strategy(query, &snap.run, &request, strategy);
        Ok(WireResult::from_result(&outcome.result))
    }

    /// Run one subscription: evaluate the baseline, acknowledge with
    /// [`WireResponse::Subscribed`], then alternate short socket polls
    /// (to notice `Unsubscribe` / disconnect / shutdown) with waits on
    /// the open run's growth signal, pushing a [`WireResponse::Delta`]
    /// of *newly derived* answers after each append that changes the
    /// result. The worker is released the moment the peer leaves.
    fn serve_subscription(&self, stream: &mut TcpStream, spec: QuerySpec) -> SubExit {
        // Stand the query up. Any setup failure is an ordinary error
        // response and the connection stays in request/response mode.
        let stood = (|| {
            let policy = self.resolve_policy(&spec)?;
            // Validate now so a bad strategy name fails the subscribe,
            // not the first delta push.
            self.resolve_strategy(&spec)?;
            let id = self.resolve(&spec.run)?;
            let open = self.open(id)?;
            let query = self.session.prepare_with(&spec.query, policy)?;
            Ok::<_, RpqError>((open, query))
        })();
        let (open, query) = match stood {
            Ok(stood) => stood,
            Err(e) => {
                self.counters.request_errors.incr();
                let report = WireResponse::Error {
                    kind: error_kind(&e).to_owned(),
                    message: e.to_string(),
                };
                return match protocol::write_message(stream, &report) {
                    Ok(()) => SubExit::Resume,
                    Err(_) => SubExit::Close,
                };
            }
        };
        let mut snap = open.snapshot();
        let mut retained = match self.eval_snapshot(&query, &spec, &snap) {
            Ok(result) => result,
            Err(e) => {
                self.counters.request_errors.incr();
                let report = WireResponse::Error {
                    kind: error_kind(&e).to_owned(),
                    message: e.to_string(),
                };
                return match protocol::write_message(stream, &report) {
                    Ok(()) => SubExit::Resume,
                    Err(_) => SubExit::Close,
                };
            }
        };
        let ack = WireResponse::Subscribed {
            seq: snap.seq,
            initial: retained.clone(),
        };
        if protocol::write_message(stream, &ack).is_err() {
            return SubExit::Close;
        }
        self.counters.subscriptions.incr();

        // Push mode. A tighter read timeout keeps both halves of the
        // poll/wait cycle responsive; the request/response timeout is
        // restored on a clean unsubscribe.
        let _ = stream.set_read_timeout(Some(READ_TICK));
        loop {
            // SIGTERM/shutdown drains the subscriber: the worker is
            // released and the scope can join.
            if self.shutdown.load(Ordering::Relaxed) {
                return SubExit::Close;
            }
            match self.poll_subscriber(stream) {
                Ok(SubPoll::Quiet) => {}
                Ok(SubPoll::Closed) => return SubExit::Close,
                Ok(SubPoll::Request(WireRequest::Unsubscribe)) => {
                    self.counters.requests.incr();
                    let _ = stream.set_read_timeout(Some(READ_TICK));
                    return match protocol::write_message(stream, &WireResponse::Unsubscribed) {
                        Ok(()) => SubExit::Resume,
                        Err(_) => SubExit::Close,
                    };
                }
                Ok(SubPoll::Request(_)) => {
                    self.counters.requests.incr();
                    self.counters.request_errors.incr();
                    let report = WireResponse::Error {
                        kind: "invalid".to_owned(),
                        message: "connection is in push mode; send Unsubscribe first".to_owned(),
                    };
                    if protocol::write_message(stream, &report).is_err() {
                        return SubExit::Close;
                    }
                }
                // Malformed frame: framing is lost, drop the connection.
                Err(_) => return SubExit::Close,
            }
            if let Some(next) = open.wait_newer(snap.seq, Duration::from_millis(150)) {
                snap = next;
                let now = match self.eval_snapshot(&query, &spec, &snap) {
                    Ok(result) => result,
                    Err(e) => {
                        let report = WireResponse::Error {
                            kind: error_kind(&e).to_owned(),
                            message: e.to_string(),
                        };
                        let _ = protocol::write_message(stream, &report);
                        return SubExit::Close;
                    }
                };
                if let Some(added) = wire_added(&retained, &now) {
                    if self.write_delta(stream, snap.seq, &added).is_err() {
                        return SubExit::Close;
                    }
                }
                retained = now;
            }
        }
    }

    /// Push one delta, streaming oversized payloads exactly like a
    /// chunked query outcome: a [`WireResponse::DeltaStream`] header
    /// (the sequence plus an empty result of the right kind) followed
    /// by bounded [`WireResponse::Chunk`] frames — an append landing
    /// thousands of new pairs never builds one huge push frame.
    fn write_delta(
        &self,
        stream: &mut TcpStream,
        seq: u64,
        added: &WireResult,
    ) -> Result<(), RpqError> {
        if added.len() <= self.chunk_entries {
            return protocol::write_message(
                stream,
                &WireResponse::Delta {
                    seq,
                    added: added.clone(),
                },
            );
        }
        let header = WireResponse::DeltaStream {
            seq,
            added: added.empty_like(),
        };
        protocol::write_message(stream, &header)?;
        match added {
            WireResult::Pairs(pairs) => {
                let slices = pairs.chunks(self.chunk_entries);
                let n = slices.len();
                for (i, slice) in slices.enumerate() {
                    let frame = WireResponse::Chunk {
                        last: i + 1 == n,
                        part: WireResult::Pairs(slice.to_vec()),
                    };
                    protocol::write_message(stream, &frame)?;
                }
            }
            WireResult::Nodes(nodes) => {
                let slices = nodes.chunks(self.chunk_entries);
                let n = slices.len();
                for (i, slice) in slices.enumerate() {
                    let frame = WireResponse::Chunk {
                        last: i + 1 == n,
                        part: WireResult::Nodes(slice.to_vec()),
                    };
                    protocol::write_message(stream, &frame)?;
                }
            }
            // A verdict never exceeds the chunk bound; unreachable, but
            // close the stream coherently if it ever does.
            WireResult::Bool(_) => {
                protocol::write_message(
                    stream,
                    &WireResponse::Chunk {
                        last: true,
                        part: added.clone(),
                    },
                )?;
            }
        }
        Ok(())
    }

    /// One non-blocking peek at a subscribed connection: nothing
    /// pending, a clean close, or a full request frame (read patiently
    /// once its first byte has arrived — the 30 s mid-frame stall
    /// deadline applies).
    fn poll_subscriber(&self, stream: &mut TcpStream) -> Result<SubPoll, RpqError> {
        let mut header = [0u8; 9];
        let first = match stream.read(&mut header) {
            Ok(0) => return Ok(SubPoll::Closed),
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                return Ok(SubPoll::Quiet)
            }
            Err(e) => return Err(RpqError::io("cannot read request frame", e)),
        };
        let mut in_frame = true;
        if first < header.len() {
            match self.read_patient(stream, &mut header[first..], &mut in_frame)? {
                // `Idle` cannot surface with `in_frame` already set.
                ReadOutcome::Done | ReadOutcome::Idle => {
                    return Err(RpqError::invalid(
                        "stream ended inside a frame header".to_owned(),
                    ))
                }
                ReadOutcome::Filled => {}
            }
        }
        let len = protocol::frame_len(&header)?;
        let mut payload = vec![0u8; len];
        match self.read_patient(stream, &mut payload, &mut in_frame)? {
            ReadOutcome::Done | ReadOutcome::Idle => Err(RpqError::invalid(
                "stream ended inside a frame payload".to_owned(),
            )),
            ReadOutcome::Filled => Ok(SubPoll::Request(protocol::decode_payload(&payload)?)),
        }
    }

    /// The stats verb's snapshot.
    fn stats(&self) -> WireStatsReply {
        let session = self.session.stats();
        let store = self.store.stats();
        let closures = rpq_relalg::closure_counts();
        let lazy = rpq_core::lazy_counts();
        WireStatsReply {
            plan_hits: session.plan_hits,
            plan_misses: session.plan_misses,
            index_hits: session.index_hits,
            index_misses: session.index_misses,
            csr_hits: session.csr_hits,
            csr_misses: session.csr_misses,
            session_evictions: session.index_evictions + session.csr_evictions,
            store_runs: self.store.len() as u64,
            tag_reloads: store.tag_reloads,
            csr_reloads: store.csr_reloads,
            tag_rebuilds: store.tag_rebuilds,
            csr_rebuilds: store.csr_rebuilds,
            accepted: self.counters.accepted.get(),
            requests: self.counters.requests.get(),
            overloaded: self.counters.overloaded.get(),
            request_errors: self.counters.request_errors.get(),
            closures_pairs: closures.pairs,
            closures_bits: closures.bits,
            closures_scc: closures.scc,
            condensations_computed: rpq_relalg::condensation_counts().computed,
            condensations_reused: rpq_relalg::condensation_counts().reused,
            plan_reloads: store.plan_reloads,
            plan_rebuilds: store.plan_rebuilds,
            store_epoch: store.epoch,
            appends: store.appended,
            append_rebuilds: store.append_rebuilds,
            subscriptions: self.counters.subscriptions.get(),
            retries: rpq_obs::global().counter("rpq_connect_retries_total").get(),
            config_warnings: rpq_relalg::config_warnings(),
            strategy_lazy: lazy.lazy_evals,
            strategy_materialized: lazy.materialized_evals,
            lazy_expansions: lazy.expansions,
        }
    }

    /// The metrics verb's reply: the full snapshot plus the slow-query
    /// ring.
    fn metrics_reply(&self) -> WireMetricsReply {
        WireMetricsReply::from_snapshot(&self.metrics_snapshot(), self.slow_log.entries())
    }

    /// Freeze everything observable about this process into one
    /// mergeable snapshot: the server's own registry, the process-wide
    /// registry (client connect retries), and point-in-time readings
    /// derived from the session, store, and relalg counters that keep
    /// their own state.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.merge(&rpq_obs::global().snapshot());
        let session = self.session.stats();
        let store = self.store.stats();
        let closures = rpq_relalg::closure_counts();
        let lazy = rpq_core::lazy_counts();
        let derived = MetricsSnapshot {
            counters: vec![
                (
                    "rpq_closures_total{kernel=\"bits\"}".to_owned(),
                    closures.bits,
                ),
                (
                    "rpq_closures_total{kernel=\"pairs\"}".to_owned(),
                    closures.pairs,
                ),
                (
                    "rpq_closures_total{kernel=\"scc\"}".to_owned(),
                    closures.scc,
                ),
                (
                    "rpq_condensations_total{outcome=\"computed\"}".to_owned(),
                    rpq_relalg::condensation_counts().computed,
                ),
                (
                    "rpq_condensations_total{outcome=\"reused\"}".to_owned(),
                    rpq_relalg::condensation_counts().reused,
                ),
                (
                    "rpq_config_warnings_total".to_owned(),
                    rpq_relalg::config_warnings(),
                ),
                ("rpq_lazy_expansions_total".to_owned(), lazy.expansions),
                ("rpq_plan_cache_hits_total".to_owned(), session.plan_hits),
                (
                    "rpq_plan_cache_misses_total".to_owned(),
                    session.plan_misses,
                ),
                (
                    "rpq_session_evictions_total".to_owned(),
                    session.index_evictions + session.csr_evictions,
                ),
                (
                    "rpq_store_append_rebuilds_total".to_owned(),
                    store.append_rebuilds,
                ),
                ("rpq_store_appends_total".to_owned(), store.appended),
                (
                    "rpq_store_csr_rebuilds_total".to_owned(),
                    store.csr_rebuilds,
                ),
                (
                    "rpq_store_plan_rebuilds_total".to_owned(),
                    store.plan_rebuilds,
                ),
                (
                    "rpq_store_plan_reloads_total".to_owned(),
                    store.plan_reloads,
                ),
                ("rpq_store_csr_reloads_total".to_owned(), store.csr_reloads),
                (
                    "rpq_store_tag_rebuilds_total".to_owned(),
                    store.tag_rebuilds,
                ),
                ("rpq_store_tag_reloads_total".to_owned(), store.tag_reloads),
                (
                    "rpq_strategy_total{strategy=\"lazy\"}".to_owned(),
                    lazy.lazy_evals,
                ),
                (
                    "rpq_strategy_total{strategy=\"materialized\"}".to_owned(),
                    lazy.materialized_evals,
                ),
            ],
            gauges: vec![
                ("rpq_store_epoch".to_owned(), store.epoch as i64),
                ("rpq_store_runs".to_owned(), self.store.len() as i64),
            ],
            histograms: Vec::new(),
            notes: match rpq_relalg::last_config_warning() {
                Some(text) => vec![("config_warning".to_owned(), text)],
                None => Vec::new(),
            },
        };
        snap.merge(&derived);
        snap
    }
}

/// The answers in `now` that were not in `then` — what a
/// [`WireResponse::Delta`] carries. Results only grow under appends
/// (paths survive new edges), so set difference over the sorted wire
/// vectors is exact; a verdict pushes once, on its `false → true`
/// flip. `None` means nothing new (no frame goes out).
fn wire_added(then: &WireResult, now: &WireResult) -> Option<WireResult> {
    match (then, now) {
        (WireResult::Bool(was), WireResult::Bool(is)) => {
            (!was && *is).then_some(WireResult::Bool(true))
        }
        (WireResult::Pairs(old), WireResult::Pairs(new)) => {
            let added: Vec<(u32, u32)> = new
                .iter()
                .filter(|p| old.binary_search(p).is_err())
                .copied()
                .collect();
            (!added.is_empty()).then_some(WireResult::Pairs(added))
        }
        (WireResult::Nodes(old), WireResult::Nodes(new)) => {
            let added: Vec<u32> = new
                .iter()
                .filter(|n| old.binary_search(n).is_err())
                .copied()
                .collect();
            (!added.is_empty()).then_some(WireResult::Nodes(added))
        }
        // A shape change cannot happen for a fixed mode; push the full
        // result rather than silently dropping it.
        _ => Some(now.clone()),
    }
}
