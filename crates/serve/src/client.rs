//! `ServeClient`: the library-side counterpart of the server.
//!
//! One client owns one TCP connection and issues any number of
//! requests over it (the protocol is strictly request/response, so a
//! connection is also the unit of serialization — open one client per
//! concurrent stream of work; they are cheap).

use crate::protocol::{
    self, QuerySpec, RunAddr, WireAppended, WireMetricsReply, WireOutcome, WireRequest,
    WireResponse, WireResult, WireRunInfo, WireStatsReply,
};
use crate::retry::RetryPolicy;
use rpq_core::RpqError;
use rpq_labeling::EventBatch;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Map a failed connect into an error that names the address and the
/// remedy, not just the raw OS string — "connection refused" against a
/// dead fleet should read like `open_store`'s "no catalog.json there".
fn connect_error(addr: &dyn std::fmt::Debug, e: std::io::Error) -> RpqError {
    use std::io::ErrorKind;
    let remedy = match e.kind() {
        ErrorKind::ConnectionRefused => {
            Some("nothing is listening there — start it with `rpq serve` (or `rpq router`) first")
        }
        ErrorKind::TimedOut | ErrorKind::WouldBlock => {
            Some("the host did not answer in time — check the address and that the service is up")
        }
        _ => None,
    };
    match remedy {
        Some(remedy) => RpqError::io(
            format!("cannot connect to {addr:?}"),
            std::io::Error::new(e.kind(), format!("{e}; {remedy}")),
        ),
        None => RpqError::io(format!("cannot connect to {addr:?}"), e),
    }
}

/// A blocking client for the `rpq-serve` protocol.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<ServeClient, RpqError> {
        let stream = TcpStream::connect(&addr).map_err(|e| connect_error(&addr, e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| RpqError::io("cannot set TCP_NODELAY", e))?;
        Ok(ServeClient { stream })
    }

    /// Connect with a hard bound on the connect itself — the router's
    /// probe path, where a black-holed backend must cost `deadline`,
    /// not the OS connect timeout (minutes).
    pub fn connect_deadline(addr: SocketAddr, deadline: Duration) -> Result<ServeClient, RpqError> {
        let stream =
            TcpStream::connect_timeout(&addr, deadline).map_err(|e| connect_error(&addr, e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| RpqError::io("cannot set TCP_NODELAY", e))?;
        Ok(ServeClient { stream })
    }

    /// Bound every subsequent read and write on this connection: a
    /// stalled server surfaces as a timeout error instead of a hang.
    /// `None` restores blocking mode.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), RpqError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| RpqError::io("cannot set the read timeout", e))?;
        self.stream
            .set_write_timeout(timeout)
            .map_err(|e| RpqError::io("cannot set the write timeout", e))
    }

    /// Like [`ServeClient::connect`], retrying for up to `timeout`
    /// while the server is still binding — the race every loopback
    /// harness (benches, smoke tests) otherwise loses. Attempts are
    /// paced by the default [`RetryPolicy`] (capped exponential
    /// backoff with deterministic jitter), the same policy the router
    /// uses between replica failovers.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + std::fmt::Debug + Clone,
        timeout: Duration,
    ) -> Result<ServeClient, RpqError> {
        let policy = RetryPolicy::default();
        let started = std::time::Instant::now();
        // Salt the jitter per process so harnesses that spawn many
        // concurrent clients do not retry in lockstep.
        let salt = u64::from(std::process::id());
        let mut attempt = 0;
        loop {
            match ServeClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if started.elapsed() >= timeout => return Err(e),
                Err(_) => {
                    rpq_obs::global()
                        .counter("rpq_connect_retries_total")
                        .incr();
                    policy.pause(attempt, salt);
                    attempt += 1;
                }
            }
        }
    }

    /// Issue one raw request and read its response. The caller sees
    /// every response variant, including [`WireResponse::Overloaded`]
    /// and [`WireResponse::Error`] — load generators count those.
    ///
    /// Streamed outcomes are reassembled here: an
    /// [`WireResponse::OutcomeStream`] header is followed by
    /// [`WireResponse::Chunk`] frames which are absorbed back into one
    /// [`WireResponse::Outcome`], so callers never see the chunking.
    pub fn request(&mut self, request: &WireRequest) -> Result<WireResponse, RpqError> {
        protocol::write_message(&mut self.stream, request)?;
        let response = protocol::read_message(&mut self.stream)?.ok_or_else(|| {
            RpqError::invalid("server closed the connection before responding".to_owned())
        })?;
        let mut outcome = match response {
            WireResponse::OutcomeStream(header) => header,
            other => return Ok(other),
        };
        loop {
            let frame = protocol::read_message(&mut self.stream)?.ok_or_else(|| {
                RpqError::invalid("server closed the connection mid-stream".to_owned())
            })?;
            match frame {
                WireResponse::Chunk { last, part } => {
                    outcome.result.absorb_chunk(part)?;
                    if last {
                        return Ok(WireResponse::Outcome(outcome));
                    }
                }
                other => {
                    return Err(RpqError::invalid(format!(
                        "expected a result chunk mid-stream, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Evaluate one query; protocol-level refusals surface as
    /// [`RpqError`].
    pub fn query(&mut self, spec: QuerySpec) -> Result<WireOutcome, RpqError> {
        match self.request(&WireRequest::Query(spec))? {
            WireResponse::Outcome(outcome) => Ok(outcome),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the server's counters.
    pub fn stats(&mut self) -> Result<WireStatsReply, RpqError> {
        match self.request(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the server's metrics registry and slow-query ring.
    /// Against a router this is the fleet-wide aggregate.
    pub fn metrics(&mut self) -> Result<WireMetricsReply, RpqError> {
        match self.request(&WireRequest::Metrics)? {
            WireResponse::Metrics(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// List the stored runs.
    pub fn runs(&mut self) -> Result<Vec<WireRunInfo>, RpqError> {
        match self.request(&WireRequest::ListRuns)? {
            WireResponse::Runs(runs) => Ok(runs),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), RpqError> {
        match self.request(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to drain and stop.
    pub fn shutdown_server(&mut self) -> Result<(), RpqError> {
        match self.request(&WireRequest::Shutdown)? {
            WireResponse::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch one stored run wholesale, with the catalog epoch it was
    /// read at — the replication pull the router's sync loop issues.
    pub fn fetch_run(&mut self, run: RunAddr) -> Result<(u64, rpq_labeling::Run), RpqError> {
        match self.request(&WireRequest::FetchRun(run))? {
            WireResponse::RunData { epoch, run } => Ok((epoch, run)),
            other => Err(unexpected(other)),
        }
    }

    /// Push one run into the server's store (deduplicated by
    /// fingerprint), returning the stored id, whether it was already
    /// there, and the catalog epoch after the write.
    pub fn push_run(&mut self, run: rpq_labeling::Run) -> Result<(u64, bool, u64), RpqError> {
        match self.request(&WireRequest::PushRun { run })? {
            WireResponse::Pushed {
                id,
                deduplicated,
                epoch,
            } => Ok((id, deduplicated != 0, epoch)),
            other => Err(unexpected(other)),
        }
    }

    /// Append a batch of events to an open run.
    pub fn append(&mut self, run: RunAddr, batch: EventBatch) -> Result<WireAppended, RpqError> {
        match self.request(&WireRequest::Append { run, batch })? {
            WireResponse::Appended(receipt) => Ok(receipt),
            other => Err(unexpected(other)),
        }
    }

    /// Stand a query up over an open run. Returns the growth sequence
    /// the baseline was evaluated at and the current full answer; the
    /// connection is now in push mode — drain it with
    /// [`ServeClient::next_delta`] and leave it with
    /// [`ServeClient::unsubscribe`].
    pub fn subscribe(&mut self, spec: QuerySpec) -> Result<(u64, WireResult), RpqError> {
        match self.request(&WireRequest::Subscribe(spec))? {
            WireResponse::Subscribed { seq, initial } => Ok((seq, initial)),
            other => Err(unexpected(other)),
        }
    }

    /// Wait up to `timeout` for the next pushed delta. `Ok(None)`
    /// means the window passed quietly — the subscription is still
    /// standing, call again.
    ///
    /// Large deltas arrive chunked (a [`WireResponse::DeltaStream`]
    /// header followed by [`WireResponse::Chunk`] frames, mirroring
    /// the query path's `OutcomeStream`); they are reassembled here,
    /// so callers never see the chunking.
    pub fn next_delta(&mut self, timeout: Duration) -> Result<Option<(u64, WireResult)>, RpqError> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| RpqError::io("cannot set the read timeout", e))?;
        let read = self.read_push();
        let _ = self.stream.set_read_timeout(None);
        match read? {
            Some(WireResponse::Delta { seq, added }) => Ok(Some((seq, added))),
            Some(WireResponse::DeltaStream { seq, mut added }) => {
                // The header is in hand, so the chunks are already on
                // the wire (blocking mode was restored above): drain
                // them into the empty header payload.
                loop {
                    let frame = protocol::read_message(&mut self.stream)?.ok_or_else(|| {
                        RpqError::invalid("server closed the connection mid-delta".to_owned())
                    })?;
                    match frame {
                        WireResponse::Chunk { last, part } => {
                            added.absorb_chunk(part)?;
                            if last {
                                return Ok(Some((seq, added)));
                            }
                        }
                        other => {
                            return Err(RpqError::invalid(format!(
                                "expected a delta chunk mid-stream, got {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(other) => Err(unexpected(other)),
            None => Ok(None),
        }
    }

    /// Leave push mode: send `Unsubscribe`, then drain any deltas that
    /// were already in flight until the server's `Unsubscribed`
    /// acknowledgement arrives. The connection is back in
    /// request/response mode afterwards.
    pub fn unsubscribe(&mut self) -> Result<(), RpqError> {
        protocol::write_message(&mut self.stream, &WireRequest::Unsubscribe)?;
        loop {
            match protocol::read_message(&mut self.stream)?.ok_or_else(|| {
                RpqError::invalid("server closed the connection before responding".to_owned())
            })? {
                WireResponse::Unsubscribed => return Ok(()),
                WireResponse::Delta { .. }
                | WireResponse::DeltaStream { .. }
                | WireResponse::Chunk { .. } => {}
                other => return Err(unexpected(other)),
            }
        }
    }

    /// One timeout-tolerant push read: `Ok(None)` when the read window
    /// passed with no frame started. Peeks before reading, so a quiet
    /// window consumes nothing and cannot desync the framing.
    fn read_push(&mut self) -> Result<Option<WireResponse>, RpqError> {
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            Ok(0) => {
                return Err(RpqError::invalid(
                    "server closed the connection mid-subscription".to_owned(),
                ))
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                return Ok(None)
            }
            Err(e) => return Err(RpqError::io("cannot read pushed frame", e)),
        }
        protocol::read_message(&mut self.stream)
    }
}

/// Map an off-script response (overload, server-side error, wrong
/// variant) into the unified error enum.
fn unexpected(response: WireResponse) -> RpqError {
    match response {
        WireResponse::Overloaded { queue } => RpqError::invalid(format!(
            "server overloaded (waiting queue of {queue} is full); retry with backoff"
        )),
        WireResponse::Error { kind, message } => {
            RpqError::invalid(format!("server rejected the request ({kind}): {message}"))
        }
        WireResponse::ShuttingDown => RpqError::invalid("server is shutting down".to_owned()),
        other => RpqError::invalid(format!("unexpected server response: {other:?}")),
    }
}
