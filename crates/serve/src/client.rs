//! `ServeClient`: the library-side counterpart of the server.
//!
//! One client owns one TCP connection and issues any number of
//! requests over it (the protocol is strictly request/response, so a
//! connection is also the unit of serialization — open one client per
//! concurrent stream of work; they are cheap).

use crate::protocol::{
    self, QuerySpec, WireOutcome, WireRequest, WireResponse, WireRunInfo, WireStatsReply,
};
use rpq_core::RpqError;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking client for the `rpq-serve` protocol.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<ServeClient, RpqError> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| RpqError::io(format!("cannot connect to {addr:?}"), e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| RpqError::io("cannot set TCP_NODELAY", e))?;
        Ok(ServeClient { stream })
    }

    /// Like [`ServeClient::connect`], retrying for up to `timeout`
    /// while the server is still binding — the race every loopback
    /// harness (benches, smoke tests) otherwise loses.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + std::fmt::Debug + Clone,
        timeout: Duration,
    ) -> Result<ServeClient, RpqError> {
        let started = std::time::Instant::now();
        loop {
            match ServeClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if started.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Issue one raw request and read its response. The caller sees
    /// every response variant, including [`WireResponse::Overloaded`]
    /// and [`WireResponse::Error`] — load generators count those.
    pub fn request(&mut self, request: &WireRequest) -> Result<WireResponse, RpqError> {
        protocol::write_message(&mut self.stream, request)?;
        protocol::read_message(&mut self.stream)?.ok_or_else(|| {
            RpqError::invalid("server closed the connection before responding".to_owned())
        })
    }

    /// Evaluate one query; protocol-level refusals surface as
    /// [`RpqError`].
    pub fn query(&mut self, spec: QuerySpec) -> Result<WireOutcome, RpqError> {
        match self.request(&WireRequest::Query(spec))? {
            WireResponse::Outcome(outcome) => Ok(outcome),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the server's counters.
    pub fn stats(&mut self) -> Result<WireStatsReply, RpqError> {
        match self.request(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// List the stored runs.
    pub fn runs(&mut self) -> Result<Vec<WireRunInfo>, RpqError> {
        match self.request(&WireRequest::ListRuns)? {
            WireResponse::Runs(runs) => Ok(runs),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), RpqError> {
        match self.request(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to drain and stop.
    pub fn shutdown_server(&mut self) -> Result<(), RpqError> {
        match self.request(&WireRequest::Shutdown)? {
            WireResponse::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// Map an off-script response (overload, server-side error, wrong
/// variant) into the unified error enum.
fn unexpected(response: WireResponse) -> RpqError {
    match response {
        WireResponse::Overloaded { queue } => RpqError::invalid(format!(
            "server overloaded (waiting queue of {queue} is full); retry with backoff"
        )),
        WireResponse::Error { kind, message } => {
            RpqError::invalid(format!("server rejected the request ({kind}): {message}"))
        }
        WireResponse::ShuttingDown => RpqError::invalid("server is shutting down".to_owned()),
        other => RpqError::invalid(format!("unexpected server response: {other:?}")),
    }
}
