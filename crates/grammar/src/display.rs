//! Human-readable rendering of specifications (diagnostics, examples).

use crate::spec::Specification;
use std::fmt;

/// Wrapper rendering a full specification as text, production by
/// production, in the style of the paper's Fig. 2a.
pub struct SpecDisplay<'a>(pub &'a Specification);

impl fmt::Display for SpecDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let spec = self.0;
        writeln!(
            f,
            "specification: {} modules ({} composite), {} productions, start = {}, size = {}",
            spec.n_modules(),
            spec.n_composite(),
            spec.productions().len(),
            spec.module_name(spec.start()),
            spec.size(),
        )?;
        for (i, p) in spec.productions().iter().enumerate() {
            write!(f, "  p{}: {} -> {{", i, spec.module_name(p.head))?;
            for (j, &m) in p.body.nodes().iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}:{}", j, spec.module_name(m))?;
            }
            write!(f, "}} [")?;
            for (j, e) in p.body.edges().iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}-{}->{}", e.src, spec.tag_name(e.tag), e.dst)?;
            }
            writeln!(f, "]")?;
        }
        let rec = spec.recursion();
        if rec.cycles.is_empty() {
            writeln!(f, "  (non-recursive)")?;
        } else {
            for (ci, c) in rec.cycles.iter().enumerate() {
                write!(f, "  cycle {}:", ci)?;
                for e in &c.edges {
                    write!(
                        f,
                        " {} -p{}@{}->",
                        spec.module_name(e.from),
                        e.production.index(),
                        e.body_pos
                    )?;
                }
                writeln!(f, " {}", spec.module_name(c.edges[0].from))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecificationBuilder;

    #[test]
    fn display_contains_key_facts() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.production("S", |w| {
            let a = w.node("t");
            let c = w.node("S");
            let d = w.node("t");
            w.edge_named(a, c, "go");
            w.edge_named(c, d, "done");
        });
        b.production("S", |w| {
            w.node("t");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let text = SpecDisplay(&spec).to_string();
        assert!(text.contains("start = S"));
        assert!(text.contains("p0: S ->"));
        assert!(text.contains("cycle 0:"));
        assert!(text.contains("-go->"));
    }
}
