//! Well-formedness conditions for coarse-grained specifications.

use std::fmt;

/// Why a specification under construction was rejected.
///
/// These conditions package the model restrictions of Sections II and
/// III-A of the paper: bodies are non-empty DAGs with a unique source and
/// sink (single-input/single-output modules), parallel edges carry
/// distinct tags, every composite module has at least one production, and
/// every module is *productive* (derives at least one finite run, so
/// derivation always terminates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two modules declared with the same name.
    DuplicateModule(String),
    /// A production or start declaration referenced an undeclared module.
    UnknownModule(String),
    /// A production was declared for an atomic module.
    ProductionForAtomic(String),
    /// A composite module has no production, so it can never execute.
    CompositeWithoutProduction(String),
    /// No start module was declared.
    MissingStart,
    /// A production body has no nodes.
    EmptyBody {
        /// Declaration index of the offending production.
        production: usize,
    },
    /// A body edge references a node index that does not exist.
    EdgeOutOfRange {
        /// Declaration index of the offending production.
        production: usize,
    },
    /// A production body contains a directed cycle (bodies must be DAGs).
    CyclicBody {
        /// Declaration index of the offending production.
        production: usize,
    },
    /// A body has zero or several in-degree-0 nodes.
    NotSingleSource {
        /// Declaration index of the offending production.
        production: usize,
        /// Number of sources found.
        count: usize,
    },
    /// A body has zero or several out-degree-0 nodes.
    NotSingleSink {
        /// Declaration index of the offending production.
        production: usize,
        /// Number of sinks found.
        count: usize,
    },
    /// Two parallel edges between the same node pair share a tag.
    DuplicateParallelEdge {
        /// Declaration index of the offending production.
        production: usize,
    },
    /// A module cannot derive any finite run (infinite recursion with no
    /// base case).
    Unproductive(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateModule(n) => write!(f, "duplicate module {n:?}"),
            ValidationError::UnknownModule(n) => write!(f, "unknown module {n:?}"),
            ValidationError::ProductionForAtomic(n) => {
                write!(f, "production declared for atomic module {n:?}")
            }
            ValidationError::CompositeWithoutProduction(n) => {
                write!(f, "composite module {n:?} has no production")
            }
            ValidationError::MissingStart => write!(f, "no start module declared"),
            ValidationError::EmptyBody { production } => {
                write!(f, "production #{production} has an empty body")
            }
            ValidationError::EdgeOutOfRange { production } => {
                write!(f, "production #{production} has an edge to a missing node")
            }
            ValidationError::CyclicBody { production } => {
                write!(f, "production #{production} body is not acyclic")
            }
            ValidationError::NotSingleSource { production, count } => {
                write!(
                    f,
                    "production #{production} body has {count} sources, need exactly 1"
                )
            }
            ValidationError::NotSingleSink { production, count } => {
                write!(
                    f,
                    "production #{production} body has {count} sinks, need exactly 1"
                )
            }
            ValidationError::DuplicateParallelEdge { production } => {
                write!(
                    f,
                    "production #{production} has parallel edges with identical tags"
                )
            }
            ValidationError::Unproductive(n) => {
                write!(f, "module {n:?} cannot derive any finite execution")
            }
        }
    }
}

impl std::error::Error for ValidationError {}
