//! Fluent construction and validation of workflow specifications.
//!
//! ```
//! use rpq_grammar::SpecificationBuilder;
//!
//! let mut b = SpecificationBuilder::new();
//! b.atomic("fetch");
//! b.atomic("align");
//! b.composite("Pipeline");
//! b.production("Pipeline", |w| {
//!     let f = w.node("fetch");
//!     let a = w.node("align");
//!     w.edge_named(f, a, "reads");
//! });
//! b.start("Pipeline");
//! let spec = b.build().unwrap();
//! assert_eq!(spec.size(), 3);
//! ```

use crate::spec::{Module, ModuleId, ModuleKind, Production, Specification, Tag};
use crate::validate::ValidationError;
use crate::workflow::{BodyEdge, SimpleWorkflow};
use std::collections::HashMap;

/// Builder for [`Specification`]; performs full validation in
/// [`SpecificationBuilder::build`].
#[derive(Debug, Default)]
pub struct SpecificationBuilder {
    modules: Vec<Module>,
    module_index: HashMap<String, ModuleId>,
    duplicate: Option<String>,
    tags: Vec<String>,
    tag_index: HashMap<String, Tag>,
    productions: Vec<PendingProduction>,
    start: Option<String>,
}

#[derive(Debug)]
struct PendingProduction {
    head: String,
    nodes: Vec<String>,
    edges: Vec<(usize, usize, Option<String>)>,
}

/// Body under construction, passed to the closure of
/// [`SpecificationBuilder::production`]. Node handles are plain indices.
#[derive(Debug, Default)]
pub struct BodyBuilder {
    nodes: Vec<String>,
    edges: Vec<(usize, usize, Option<String>)>,
}

impl BodyBuilder {
    /// Add an occurrence of `module`; returns its handle.
    pub fn node(&mut self, module: &str) -> usize {
        self.nodes.push(module.to_owned());
        self.nodes.len() - 1
    }

    /// Add a data edge with an explicit tag.
    pub fn edge_named(&mut self, src: usize, dst: usize, tag: &str) {
        self.edges.push((src, dst, Some(tag.to_owned())));
    }

    /// Add a data edge using the paper's example convention: the tag is
    /// the name of the module at the edge's head.
    pub fn edge(&mut self, src: usize, dst: usize) {
        self.edges.push((src, dst, None));
    }
}

impl SpecificationBuilder {
    /// Fresh builder.
    pub fn new() -> SpecificationBuilder {
        SpecificationBuilder::default()
    }

    fn add_module(&mut self, name: &str, kind: ModuleKind) {
        if self.module_index.contains_key(name) {
            self.duplicate.get_or_insert_with(|| name.to_owned());
            return;
        }
        let id = ModuleId(self.modules.len() as u32);
        self.modules.push(Module {
            name: name.to_owned(),
            kind,
        });
        self.module_index.insert(name.to_owned(), id);
    }

    /// Declare an atomic module (a terminal).
    pub fn atomic(&mut self, name: &str) -> &mut Self {
        self.add_module(name, ModuleKind::Atomic);
        self
    }

    /// Declare a composite module (a nonterminal).
    pub fn composite(&mut self, name: &str) -> &mut Self {
        self.add_module(name, ModuleKind::Composite);
        self
    }

    /// Pre-intern a tag so it exists even if unused on edges (useful when
    /// queries mention tags that only appear in some specs of a family).
    pub fn declare_tag(&mut self, name: &str) -> &mut Self {
        self.intern_tag(name);
        self
    }

    fn intern_tag(&mut self, name: &str) -> Tag {
        if let Some(&t) = self.tag_index.get(name) {
            return t;
        }
        let t = Tag(self.tags.len() as u32);
        self.tags.push(name.to_owned());
        self.tag_index.insert(name.to_owned(), t);
        t
    }

    /// Declare a production `head → body`, with the body assembled by the
    /// closure. Declaration order fixes the production numbering that
    /// labels reference.
    pub fn production(&mut self, head: &str, f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut body = BodyBuilder::default();
        f(&mut body);
        self.productions.push(PendingProduction {
            head: head.to_owned(),
            nodes: body.nodes,
            edges: body.edges,
        });
        self
    }

    /// Declare the start module `S`.
    pub fn start(&mut self, name: &str) -> &mut Self {
        self.start = Some(name.to_owned());
        self
    }

    /// Validate and build the specification.
    pub fn build(mut self) -> Result<Specification, ValidationError> {
        if let Some(name) = self.duplicate.take() {
            return Err(ValidationError::DuplicateModule(name));
        }
        let start_name = self.start.clone().ok_or(ValidationError::MissingStart)?;
        let start = *self
            .module_index
            .get(&start_name)
            .ok_or(ValidationError::UnknownModule(start_name))?;

        // Resolve and validate productions one by one.
        let pending = std::mem::take(&mut self.productions);
        let mut productions: Vec<Production> = Vec::with_capacity(pending.len());
        for (pi, p) in pending.into_iter().enumerate() {
            let head = *self
                .module_index
                .get(&p.head)
                .ok_or_else(|| ValidationError::UnknownModule(p.head.clone()))?;
            if self.modules[head.index()].kind != ModuleKind::Composite {
                return Err(ValidationError::ProductionForAtomic(p.head));
            }
            if p.nodes.is_empty() {
                return Err(ValidationError::EmptyBody { production: pi });
            }
            let mut nodes: Vec<ModuleId> = Vec::with_capacity(p.nodes.len());
            for n in &p.nodes {
                nodes.push(
                    *self
                        .module_index
                        .get(n)
                        .ok_or_else(|| ValidationError::UnknownModule(n.clone()))?,
                );
            }
            let n = nodes.len();
            for &(s, d, _) in &p.edges {
                if s >= n || d >= n {
                    return Err(ValidationError::EdgeOutOfRange { production: pi });
                }
            }

            // Stable topological sort (Kahn, smallest declaration index
            // first) — fixes the paper's "arbitrary topological ordering"
            // deterministically and catches cycles.
            let mut indeg = vec![0usize; n];
            for &(_, d, _) in &p.edges {
                indeg[d] += 1;
            }
            let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = indeg
                .iter()
                .enumerate()
                .filter(|(_, &d)| d == 0)
                .map(|(i, _)| std::cmp::Reverse(i))
                .collect();
            let mut order: Vec<usize> = Vec::with_capacity(n);
            let mut remaining_indeg = indeg.clone();
            while let Some(std::cmp::Reverse(v)) = ready.pop() {
                order.push(v);
                for &(s, d, _) in &p.edges {
                    if s == v {
                        remaining_indeg[d] -= 1;
                        if remaining_indeg[d] == 0 {
                            ready.push(std::cmp::Reverse(d));
                        }
                    }
                }
            }
            if order.len() != n {
                return Err(ValidationError::CyclicBody { production: pi });
            }
            let n_sources = indeg.iter().filter(|&&d| d == 0).count();
            if n_sources != 1 {
                return Err(ValidationError::NotSingleSource {
                    production: pi,
                    count: n_sources,
                });
            }
            let mut outdeg = vec![0usize; n];
            for &(s, _, _) in &p.edges {
                outdeg[s] += 1;
            }
            let n_sinks = outdeg.iter().filter(|&&d| d == 0).count();
            if n_sinks != 1 {
                return Err(ValidationError::NotSingleSink {
                    production: pi,
                    count: n_sinks,
                });
            }

            // Remap to topological positions.
            let mut new_pos = vec![0usize; n];
            for (new_i, &old_i) in order.iter().enumerate() {
                new_pos[old_i] = new_i;
            }
            let sorted_nodes: Vec<ModuleId> = order.iter().map(|&i| nodes[i]).collect();
            let mut edges: Vec<BodyEdge> = Vec::with_capacity(p.edges.len());
            for (s, d, tag) in p.edges {
                let tag_name = match tag {
                    Some(t) => t,
                    // Default convention: tag = head-module name.
                    None => self.modules[nodes[d].index()].name.clone(),
                };
                let tag = self.intern_tag(&tag_name);
                edges.push(BodyEdge {
                    src: new_pos[s] as u32,
                    dst: new_pos[d] as u32,
                    tag,
                });
            }
            edges.sort_by_key(|e| (e.src, e.dst, e.tag));
            if edges
                .windows(2)
                .any(|w| w[0].src == w[1].src && w[0].dst == w[1].dst && w[0].tag == w[1].tag)
            {
                return Err(ValidationError::DuplicateParallelEdge { production: pi });
            }
            productions.push(Production {
                head,
                body: SimpleWorkflow::new(sorted_nodes, edges),
            });
        }

        // Every composite module needs at least one production.
        let mut has_prod = vec![false; self.modules.len()];
        for p in &productions {
            has_prod[p.head.index()] = true;
        }
        for (i, m) in self.modules.iter().enumerate() {
            if m.kind == ModuleKind::Composite && !has_prod[i] {
                return Err(ValidationError::CompositeWithoutProduction(m.name.clone()));
            }
        }

        // Productivity fixpoint: atomic modules are productive; a
        // composite is productive once some production has an
        // all-productive body. Guarantees derivation termination.
        let mut productive: Vec<bool> = self
            .modules
            .iter()
            .map(|m| m.kind == ModuleKind::Atomic)
            .collect();
        loop {
            let mut changed = false;
            for p in &productions {
                if !productive[p.head.index()]
                    && p.body.nodes().iter().all(|m| productive[m.index()])
                {
                    productive[p.head.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if let Some((i, _)) = productive.iter().enumerate().find(|(_, &p)| !p) {
            return Err(ValidationError::Unproductive(self.modules[i].name.clone()));
        }

        Ok(Specification::from_parts(
            self.modules,
            self.tags,
            start,
            productions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SpecificationBuilder {
        let mut b = SpecificationBuilder::new();
        b.atomic("x");
        b.atomic("y");
        b.composite("S");
        b
    }

    #[test]
    fn minimal_spec_builds() {
        let mut b = base();
        b.production("S", |w| {
            w.node("x");
        });
        b.start("S");
        let spec = b.build().unwrap();
        assert_eq!(spec.n_modules(), 3);
        assert_eq!(spec.productions().len(), 1);
    }

    #[test]
    fn duplicate_module_rejected() {
        let mut b = base();
        b.atomic("x");
        b.production("S", |w| {
            w.node("x");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::DuplicateModule("x".into())
        );
    }

    #[test]
    fn missing_start_rejected() {
        let mut b = base();
        b.production("S", |w| {
            w.node("x");
        });
        assert_eq!(b.build().unwrap_err(), ValidationError::MissingStart);
    }

    #[test]
    fn unknown_module_in_body_rejected() {
        let mut b = base();
        b.production("S", |w| {
            w.node("ghost");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::UnknownModule("ghost".into())
        );
    }

    #[test]
    fn production_for_atomic_rejected() {
        let mut b = base();
        b.production("x", |w| {
            w.node("y");
        });
        b.production("S", |w| {
            w.node("x");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::ProductionForAtomic("x".into())
        );
    }

    #[test]
    fn composite_without_production_rejected() {
        let mut b = base();
        b.composite("T");
        b.production("S", |w| {
            w.node("x");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::CompositeWithoutProduction("T".into())
        );
    }

    #[test]
    fn cyclic_body_rejected() {
        let mut b = base();
        b.production("S", |w| {
            let a = w.node("x");
            let c = w.node("y");
            w.edge_named(a, c, "t");
            w.edge_named(c, a, "t2");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::CyclicBody { production: 0 }
        );
    }

    #[test]
    fn multi_source_rejected() {
        let mut b = base();
        b.production("S", |w| {
            let a = w.node("x");
            let c = w.node("x");
            let d = w.node("y");
            w.edge_named(a, d, "t");
            w.edge_named(c, d, "u");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::NotSingleSource {
                production: 0,
                count: 2
            }
        );
    }

    #[test]
    fn multi_sink_rejected() {
        let mut b = base();
        b.production("S", |w| {
            let a = w.node("x");
            let c = w.node("x");
            let d = w.node("y");
            w.edge_named(d, a, "t");
            w.edge_named(d, c, "u");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::NotSingleSink {
                production: 0,
                count: 2
            }
        );
    }

    #[test]
    fn duplicate_parallel_edge_rejected() {
        let mut b = base();
        b.production("S", |w| {
            let a = w.node("x");
            let c = w.node("y");
            w.edge_named(a, c, "t");
            w.edge_named(a, c, "t");
        });
        b.start("S");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::DuplicateParallelEdge { production: 0 }
        );
    }

    #[test]
    fn parallel_edges_with_distinct_tags_allowed() {
        let mut b = base();
        b.production("S", |w| {
            let a = w.node("x");
            let c = w.node("y");
            w.edge_named(a, c, "t");
            w.edge_named(a, c, "u");
        });
        b.start("S");
        assert!(b.build().is_ok());
    }

    #[test]
    fn unproductive_recursion_rejected() {
        // A -> A with no base case can never finish deriving.
        let mut b = base();
        b.composite("A");
        b.production("S", |w| {
            w.node("A");
        });
        b.production("A", |w| {
            let t = w.node("x");
            let a = w.node("A");
            w.edge_named(t, a, "A");
        });
        b.start("S");
        // Both S and A are unproductive (S's body contains A); the error
        // names the first one in declaration order.
        assert!(matches!(
            b.build().unwrap_err(),
            ValidationError::Unproductive(_)
        ));
    }

    #[test]
    fn bodies_are_topologically_renumbered() {
        let mut b = base();
        // Declare nodes in anti-topological order.
        b.production("S", |w| {
            let last = w.node("y");
            let first = w.node("x");
            w.edge_named(first, last, "t");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let body = &spec.productions()[0].body;
        // After sorting, position 0 must be the source "x".
        assert_eq!(spec.module_name(body.node(0)), "x");
        assert_eq!(spec.module_name(body.node(1)), "y");
        assert_eq!(body.source(), 0);
        assert_eq!(body.sink(), 1);
    }

    #[test]
    fn default_edge_tag_is_head_module_name() {
        let mut b = base();
        b.production("S", |w| {
            let a = w.node("x");
            let c = w.node("y");
            w.edge(a, c);
        });
        b.start("S");
        let spec = b.build().unwrap();
        let e = spec.productions()[0].body.edges()[0];
        assert_eq!(spec.tag_name(e.tag), "y");
    }

    #[test]
    fn declared_tags_are_interned() {
        let mut b = base();
        b.declare_tag("phantom");
        b.production("S", |w| {
            w.node("x");
        });
        b.start("S");
        let spec = b.build().unwrap();
        assert!(spec.tag_by_name("phantom").is_some());
    }
}
