//! Core specification types: modules, tags, productions, specifications.

use crate::production_graph::{ProductionGraph, RecursionInfo};
use crate::workflow::SimpleWorkflow;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense id of a module (an element of `Σ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub u32);

impl ModuleId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of a production (an element of `P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProductionId(pub u32);

impl ProductionId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of an edge tag (an element of `Γ`, the data-name alphabet).
///
/// Tags are what regular path queries are written over; `rpq-automata`'s
/// `Symbol(i)` corresponds to `Tag(i)` one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag(pub u32);

impl Tag {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Atomic modules execute directly; composite modules are replaced by a
/// production body during derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModuleKind {
    /// A terminal of the CFGG.
    Atomic,
    /// A nonterminal of the CFGG (element of `Δ`).
    Composite,
}

/// A module declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Human-readable unique name.
    pub name: String,
    /// Atomic or composite.
    pub kind: ModuleKind,
}

/// A workflow production `M → W` (Definition 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Production {
    /// The composite module being defined.
    pub head: ModuleId,
    /// The simple workflow it expands to.
    pub body: SimpleWorkflow,
}

/// A workflow specification `G = (Σ, Δ, S, P)` (Definition 3).
///
/// Construct via [`crate::SpecificationBuilder`], which validates the
/// coarse-grained well-formedness conditions. A `Specification` is
/// immutable after construction; derived analyses (production graph,
/// recursion info) are computed once and cached inside.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Specification {
    modules: Vec<Module>,
    tags: Vec<String>,
    start: ModuleId,
    productions: Vec<Production>,
    /// Productions per head module (empty vec for atomic modules).
    prods_by_head: Vec<Vec<ProductionId>>,
    #[serde(skip)]
    name_index: std::sync::OnceLock<HashMap<String, ModuleId>>,
    #[serde(skip)]
    tag_index: std::sync::OnceLock<HashMap<String, Tag>>,
    #[serde(skip)]
    recursion: std::sync::OnceLock<RecursionInfo>,
}

impl PartialEq for Specification {
    fn eq(&self, other: &Self) -> bool {
        self.modules == other.modules
            && self.tags == other.tags
            && self.start == other.start
            && self.productions == other.productions
    }
}

impl Specification {
    /// Assemble a specification from validated parts (crate-internal; use
    /// [`crate::SpecificationBuilder`]).
    pub(crate) fn from_parts(
        modules: Vec<Module>,
        tags: Vec<String>,
        start: ModuleId,
        productions: Vec<Production>,
    ) -> Specification {
        let mut prods_by_head: Vec<Vec<ProductionId>> = vec![Vec::new(); modules.len()];
        for (i, p) in productions.iter().enumerate() {
            prods_by_head[p.head.index()].push(ProductionId(i as u32));
        }
        Specification {
            modules,
            tags,
            start,
            productions,
            prods_by_head,
            name_index: std::sync::OnceLock::new(),
            tag_index: std::sync::OnceLock::new(),
            recursion: std::sync::OnceLock::new(),
        }
    }

    /// All modules (`Σ`).
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Number of modules `|Σ|`.
    pub fn n_modules(&self) -> usize {
        self.modules.len()
    }

    /// Number of distinct edge tags `|Γ|`.
    pub fn n_tags(&self) -> usize {
        self.tags.len()
    }

    /// The start module `S`.
    pub fn start(&self) -> ModuleId {
        self.start
    }

    /// All productions (`P`), in declaration order (the "fixed arbitrary
    /// ordering" the labeling scheme requires).
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Production by id.
    #[inline]
    pub fn production(&self, id: ProductionId) -> &Production {
        &self.productions[id.index()]
    }

    /// The productions whose head is `module` (empty for atomic modules).
    pub fn productions_of(&self, module: ModuleId) -> &[ProductionId] {
        &self.prods_by_head[module.index()]
    }

    /// Module metadata by id.
    #[inline]
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Is `id` composite (∈ Δ)?
    #[inline]
    pub fn is_composite(&self, id: ModuleId) -> bool {
        self.modules[id.index()].kind == ModuleKind::Composite
    }

    /// Module name by id.
    pub fn module_name(&self, id: ModuleId) -> &str {
        &self.modules[id.index()].name
    }

    /// Look up a module by name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.name_index
            .get_or_init(|| {
                self.modules
                    .iter()
                    .enumerate()
                    .map(|(i, m)| (m.name.clone(), ModuleId(i as u32)))
                    .collect()
            })
            .get(name)
            .copied()
    }

    /// Tag name by id.
    pub fn tag_name(&self, tag: Tag) -> &str {
        &self.tags[tag.index()]
    }

    /// Look up a tag by name.
    pub fn tag_by_name(&self, name: &str) -> Option<Tag> {
        self.tag_index
            .get_or_init(|| {
                self.tags
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.clone(), Tag(i as u32)))
                    .collect()
            })
            .get(name)
            .copied()
    }

    /// All tag names in id order.
    pub fn tag_names(&self) -> &[String] {
        &self.tags
    }

    /// The paper's `|G|`: the sum over productions of (1 + number of body
    /// modules) — footnote 3 of Section V-A.
    pub fn size(&self) -> usize {
        self.productions
            .iter()
            .map(|p| 1 + p.body.n_nodes())
            .sum::<usize>()
    }

    /// Build (or fetch the cached) production graph `P(G)`.
    pub fn production_graph(&self) -> ProductionGraph {
        ProductionGraph::build(self)
    }

    /// Cached recursion analysis (cycles, phases, strict linearity).
    pub fn recursion(&self) -> &RecursionInfo {
        self.recursion.get_or_init(|| RecursionInfo::analyze(self))
    }

    /// Is the specification strictly linear-recursive (Definition 6)?
    pub fn is_strictly_linear(&self) -> bool {
        self.recursion().is_strictly_linear
    }

    /// Is the specification recursive at all?
    pub fn is_recursive(&self) -> bool {
        !self.recursion().cycles.is_empty()
    }

    /// Count of composite modules `|Δ|`.
    pub fn n_composite(&self) -> usize {
        self.modules
            .iter()
            .filter(|m| m.kind == ModuleKind::Composite)
            .count()
    }

    /// Number of *recursive* productions (productions that sit on a cycle
    /// of `P(G)`); the statistic the paper reports for its datasets.
    pub fn n_recursive_productions(&self) -> usize {
        let rec = self.recursion();
        let mut ids: Vec<ProductionId> = rec
            .cycles
            .iter()
            .flat_map(|c| c.edges.iter().map(|e| e.production))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::SpecificationBuilder;

    #[test]
    fn size_matches_paper_footnote() {
        // One production S -> (a -> b): size = 1 + 2 = 3.
        let mut b = SpecificationBuilder::new();
        b.atomic("a");
        b.atomic("b");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("a");
            let y = w.node("b");
            w.edge_named(x, y, "data");
        });
        b.start("S");
        let spec = b.build().unwrap();
        assert_eq!(spec.size(), 3);
        assert_eq!(spec.n_modules(), 3);
        assert_eq!(spec.n_composite(), 1);
        assert_eq!(spec.n_tags(), 1);
    }

    #[test]
    fn lookups_round_trip() {
        let mut b = SpecificationBuilder::new();
        b.atomic("leaf");
        b.composite("Root");
        b.production("Root", |w| {
            w.node("leaf");
        });
        b.start("Root");
        let spec = b.build().unwrap();
        let root = spec.module_by_name("Root").unwrap();
        assert_eq!(spec.module_name(root), "Root");
        assert!(spec.is_composite(root));
        let leaf = spec.module_by_name("leaf").unwrap();
        assert!(!spec.is_composite(leaf));
        assert_eq!(spec.productions_of(root).len(), 1);
        assert_eq!(spec.productions_of(leaf).len(), 0);
        assert!(spec.module_by_name("nope").is_none());
    }
}
