#![warn(missing_docs)]

//! Workflow specifications as context-free graph grammars (CFGGs).
//!
//! This crate implements the workflow model of Section II of Huang et al.
//! (ICDE 2015), which in turn follows Bao, Davidson, Milo (PVLDB 2012) and
//! Beeri et al. (VLDB 2006):
//!
//! * a **simple workflow** is a DAG of module occurrences with tagged data
//!   edges ([`SimpleWorkflow`]);
//! * a **workflow production** `M → W` replaces a composite module `M`
//!   with a simple workflow `W` ([`Production`]);
//! * a **workflow specification** is a CFGG `G = (Σ, Δ, S, P)`
//!   ([`Specification`]); its language is the set of executions (runs),
//!   derived by repeated node replacement (implemented in `rpq-labeling`).
//!
//! The crate also provides the **production graph** `P(G)` (Definition 5)
//! with cycle analysis establishing whether `G` is **strictly
//! linear-recursive** (Definition 6) — the structural condition that makes
//! compact derivation-based labeling possible.
//!
//! Coarse-grained restrictions from Section III-A are enforced at
//! validation time: production bodies are acyclic with a unique source and
//! a unique sink, so every module has a single input and a single output.

pub mod builder;
pub mod display;
pub mod production_graph;
pub mod spec;
pub mod validate;
pub mod workflow;

pub use builder::SpecificationBuilder;
pub use production_graph::{Cycle, CycleEdge, ProductionGraph, RecursionInfo};
pub use spec::{ModuleId, ModuleKind, Production, ProductionId, Specification, Tag};
pub use validate::ValidationError;
pub use workflow::{BodyEdge, SimpleWorkflow};
