//! The production graph `P(G)` and strict-linear-recursion analysis.
//!
//! Definition 5: `P(G)` is a directed multigraph with one vertex per
//! module and one edge `M → M'` for every occurrence of `M'` in the body
//! of a production of `M` (parallel edges for multiple occurrences).
//!
//! Definition 6: `G` is **strictly linear-recursive** iff all cycles of
//! `P(G)` are vertex-disjoint. Equivalently — and this is what we check —
//! every non-trivial strongly connected component of `P(G)` is a single
//! simple cycle: each member vertex has exactly one outgoing and one
//! incoming edge *within* the component (counting edge multiplicity).
//! If some vertex had two outgoing in-component edges, each would lie on a
//! cycle through that vertex, contradicting disjointness; conversely a
//! component that is a simple cycle contains exactly one cycle.

use crate::spec::{ModuleId, ProductionId, Specification};
use serde::{Deserialize, Serialize};

/// One edge of `P(G)`: module `from` derives module `to` via position
/// `body_pos` of production `production`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PgEdge {
    /// Head of the production.
    pub from: ModuleId,
    /// Production inducing the edge.
    pub production: ProductionId,
    /// Body position of the occurrence.
    pub body_pos: u32,
    /// Module at that position.
    pub to: ModuleId,
}

/// The production graph `P(G)`.
#[derive(Debug, Clone)]
pub struct ProductionGraph {
    /// Outgoing edges per module.
    out: Vec<Vec<PgEdge>>,
    n_edges: usize,
}

impl ProductionGraph {
    /// Build `P(G)` from a specification.
    pub fn build(spec: &Specification) -> ProductionGraph {
        let mut out: Vec<Vec<PgEdge>> = vec![Vec::new(); spec.n_modules()];
        let mut n_edges = 0;
        for (pi, prod) in spec.productions().iter().enumerate() {
            for (pos, &module) in prod.body.nodes().iter().enumerate() {
                out[prod.head.index()].push(PgEdge {
                    from: prod.head,
                    production: ProductionId(pi as u32),
                    body_pos: pos as u32,
                    to: module,
                });
                n_edges += 1;
            }
        }
        ProductionGraph { out, n_edges }
    }

    /// Outgoing edges of `module`.
    pub fn edges_from(&self, module: ModuleId) -> &[PgEdge] {
        &self.out[module.index()]
    }

    /// Total number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Number of vertices (= modules).
    pub fn n_vertices(&self) -> usize {
        self.out.len()
    }

    /// Strongly connected components (Tarjan, iterative). Returns the
    /// component id of each vertex; ids are in reverse topological order.
    pub fn sccs(&self) -> Vec<u32> {
        let n = self.out.len();
        let mut index = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![u32::MAX; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut n_comps = 0u32;

        // Explicit DFS stack: (vertex, next-edge-cursor).
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != u32::MAX {
                continue;
            }
            call.push((root, 0));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
                let edges = &self.out[v as usize];
                if *cursor < edges.len() {
                    let w = edges[*cursor].to.0;
                    *cursor += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = n_comps;
                            if w == v {
                                break;
                            }
                        }
                        n_comps += 1;
                    }
                }
            }
        }
        comp
    }
}

/// One cycle of `P(G)` in a strictly linear-recursive specification.
///
/// `edges[t]` leads from the cycle's `t`-th module to its `(t+1) mod L`-th
/// module; the paper's "(s, t, i)" label entries reference cycles by index
/// `s` and a starting phase `t`. The first module is canonicalized to the
/// smallest `ModuleId` on the cycle, making cycle numbering deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cycle {
    /// The cycle's edges in order.
    pub edges: Vec<CycleEdge>,
}

/// One step of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleEdge {
    /// Module executing the recursive production.
    pub from: ModuleId,
    /// The unique cycle-continuing production of `from`.
    pub production: ProductionId,
    /// Body position holding the next cycle module.
    pub body_pos: u32,
    /// The next cycle module.
    pub to: ModuleId,
}

impl Cycle {
    /// Cycle length (number of modules = number of edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True iff the cycle is a self-loop.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The module at phase `t`.
    pub fn module_at(&self, phase: usize) -> ModuleId {
        self.edges[phase % self.edges.len()].from
    }
}

/// Recursion analysis of a specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecursionInfo {
    /// Are all cycles of `P(G)` vertex-disjoint?
    pub is_strictly_linear: bool,
    /// The cycles (populated only when strictly linear; deterministic
    /// order: by smallest member module id).
    pub cycles: Vec<Cycle>,
    /// For each module: `(cycle index, phase)` if the module lies on a
    /// cycle.
    pub module_cycle: Vec<Option<(u16, u16)>>,
    /// For each production: `(cycle index, rec body position)` if the
    /// production is the cycle-continuing production of its head.
    pub production_cycle: Vec<Option<(u16, u32)>>,
}

impl RecursionInfo {
    /// Analyze a specification.
    pub fn analyze(spec: &Specification) -> RecursionInfo {
        let pg = spec.production_graph();
        let comp = pg.sccs();
        let n = spec.n_modules();

        // Group vertices by component, find non-trivial components:
        // >1 member, or a single member with a self-loop.
        let n_comps = comp.iter().map(|&c| c + 1).max().unwrap_or(0) as usize;
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_comps];
        for v in 0..n as u32 {
            members[comp[v as usize] as usize].push(v);
        }

        let mut cycles: Vec<Cycle> = Vec::new();
        let mut strictly_linear = true;

        for ms in members.iter() {
            let single = ms.len() == 1;
            let v0 = ms[0];
            let has_self_loop = pg.edges_from(ModuleId(v0)).iter().any(|e| e.to.0 == v0);
            if single && !has_self_loop {
                continue; // trivial component
            }
            // Non-trivial: every member must have exactly one in-component
            // outgoing edge (multiplicity counted).
            let in_comp = |m: u32| comp[m as usize] == comp[v0 as usize];
            let mut ok = true;
            let mut next_edge: Vec<Option<PgEdge>> = vec![None; ms.len()];
            let local = |m: u32| ms.binary_search(&m).expect("member");
            for &m in ms {
                let internal: Vec<&PgEdge> = pg
                    .edges_from(ModuleId(m))
                    .iter()
                    .filter(|e| in_comp(e.to.0))
                    .collect();
                if internal.len() != 1 {
                    ok = false;
                    break;
                }
                next_edge[local(m)] = Some(*internal[0]);
            }
            if !ok {
                strictly_linear = false;
                continue;
            }
            // Walk the functional graph from the smallest member; it must
            // visit every member exactly once and return.
            let start = *ms.iter().min().expect("non-empty");
            let mut edges = Vec::with_capacity(ms.len());
            let mut cur = start;
            loop {
                let e = next_edge[local(cur)].expect("set above");
                edges.push(CycleEdge {
                    from: e.from,
                    production: e.production,
                    body_pos: e.body_pos,
                    to: e.to,
                });
                cur = e.to.0;
                if cur == start {
                    break;
                }
                if edges.len() > ms.len() {
                    break; // revisits a vertex before closing: not simple
                }
            }
            if edges.len() != ms.len() || cur != start {
                strictly_linear = false;
                continue;
            }
            cycles.push(Cycle { edges });
        }

        if !strictly_linear {
            return RecursionInfo {
                is_strictly_linear: false,
                cycles: Vec::new(),
                module_cycle: vec![None; n],
                production_cycle: vec![None; spec.productions().len()],
            };
        }

        cycles.sort_by_key(|c| c.edges[0].from);
        let mut module_cycle = vec![None; n];
        let mut production_cycle = vec![None; spec.productions().len()];
        for (ci, cycle) in cycles.iter().enumerate() {
            for (phase, e) in cycle.edges.iter().enumerate() {
                module_cycle[e.from.index()] = Some((ci as u16, phase as u16));
                production_cycle[e.production.index()] = Some((ci as u16, e.body_pos));
            }
        }
        RecursionInfo {
            is_strictly_linear: true,
            cycles,
            module_cycle,
            production_cycle,
        }
    }

    /// The cycle and phase of `module`, if it is recursive.
    pub fn cycle_of_module(&self, module: ModuleId) -> Option<(u16, u16)> {
        self.module_cycle[module.index()]
    }

    /// If `production` continues a cycle, its `(cycle, rec body position)`.
    pub fn cycle_of_production(&self, production: ProductionId) -> Option<(u16, u32)> {
        self.production_cycle[production.index()]
    }

    /// Is the module recursive (on some cycle)?
    pub fn is_recursive_module(&self, module: ModuleId) -> bool {
        self.module_cycle[module.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::SpecificationBuilder;

    /// The paper's Fig. 2a specification (see `rpq-workloads` for the
    /// shared constructor; rebuilt here to keep the crate self-contained).
    fn fig2() -> crate::Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["a", "b", "c", "d", "e"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        // W1: c -> A -> B -> b
        b.production("S", |w| {
            let c = w.node("c");
            let a = w.node("A");
            let bb = w.node("B");
            let b2 = w.node("b");
            w.edge_named(c, a, "A");
            w.edge_named(a, bb, "B");
            w.edge_named(bb, b2, "b");
        });
        // W2: a -> A -> d
        b.production("A", |w| {
            let a = w.node("a");
            let aa = w.node("A");
            let d = w.node("d");
            w.edge_named(a, aa, "A");
            w.edge_named(aa, d, "d");
        });
        // W3: e -> e
        b.production("A", |w| {
            let e1 = w.node("e");
            let e2 = w.node("e");
            w.edge_named(e1, e2, "e");
        });
        // W4: b -> b
        b.production("B", |w| {
            let b1 = w.node("b");
            let b2 = w.node("b");
            w.edge_named(b1, b2, "b");
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn fig2_is_strictly_linear_with_one_cycle() {
        let spec = fig2();
        let rec = spec.recursion();
        assert!(rec.is_strictly_linear);
        assert_eq!(rec.cycles.len(), 1);
        let cycle = &rec.cycles[0];
        assert_eq!(cycle.len(), 1);
        let a = spec.module_by_name("A").unwrap();
        assert_eq!(cycle.edges[0].from, a);
        assert_eq!(cycle.edges[0].to, a);
        // W2 is the second declared production, rec position 1 (module A).
        assert_eq!(cycle.edges[0].production.index(), 1);
        assert_eq!(cycle.edges[0].body_pos, 1);
        assert!(rec.is_recursive_module(a));
        assert!(!rec.is_recursive_module(spec.module_by_name("S").unwrap()));
        assert_eq!(spec.n_recursive_productions(), 1);
    }

    #[test]
    fn fig5_shared_cycles_are_rejected() {
        // Fig. 5: S with two self-loops (two cycles sharing S).
        let mut b = SpecificationBuilder::new();
        b.atomic("a");
        b.atomic("b");
        b.atomic("c");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("a");
            let s = w.node("S");
            let y = w.node("b");
            w.edge_named(x, s, "S");
            w.edge_named(s, y, "b");
        });
        b.production("S", |w| {
            let x = w.node("c");
            let s = w.node("S");
            w.edge_named(x, s, "S");
        });
        b.production("S", |w| {
            w.node("a");
        });
        b.start("S");
        let spec = b.build().unwrap();
        assert!(!spec.is_strictly_linear());
        assert!(spec.recursion().cycles.is_empty());
    }

    #[test]
    fn two_module_cycle_is_linear() {
        // S -> A; A -> x B y; B -> x A y | x; A -> z  (cycle A -> B -> A)
        let mut b = SpecificationBuilder::new();
        for m in ["x", "y", "z"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            w.node("A");
        });
        b.production("A", |w| {
            let x = w.node("x");
            let bb = w.node("B");
            let y = w.node("y");
            w.edge_named(x, bb, "B");
            w.edge_named(bb, y, "y");
        });
        b.production("B", |w| {
            let x = w.node("x");
            let aa = w.node("A");
            let y = w.node("y");
            w.edge_named(x, aa, "A");
            w.edge_named(aa, y, "y");
        });
        b.production("B", |w| {
            w.node("x");
        });
        b.production("A", |w| {
            w.node("z");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let rec = spec.recursion();
        assert!(rec.is_strictly_linear);
        assert_eq!(rec.cycles.len(), 1);
        assert_eq!(rec.cycles[0].len(), 2);
        let a = spec.module_by_name("A").unwrap();
        let bb = spec.module_by_name("B").unwrap();
        // Canonical start = smaller module id (A was declared before B).
        assert_eq!(rec.cycles[0].edges[0].from, a);
        assert_eq!(rec.cycles[0].edges[0].to, bb);
        assert_eq!(rec.cycles[0].edges[1].from, bb);
        assert_eq!(rec.cycles[0].edges[1].to, a);
        assert_eq!(rec.cycle_of_module(a), Some((0, 0)));
        assert_eq!(rec.cycle_of_module(bb), Some((0, 1)));
    }

    #[test]
    fn two_disjoint_cycles_are_linear() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            let a = w.node("A");
            let bb = w.node("B");
            w.edge_named(a, bb, "B");
        });
        b.production("A", |w| {
            let t = w.node("t");
            let a = w.node("A");
            w.edge_named(t, a, "A");
        });
        b.production("A", |w| {
            w.node("t");
        });
        b.production("B", |w| {
            let t = w.node("t");
            let bb = w.node("B");
            w.edge_named(t, bb, "B");
        });
        b.production("B", |w| {
            w.node("t");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let rec = spec.recursion();
        assert!(rec.is_strictly_linear);
        assert_eq!(rec.cycles.len(), 2);
    }

    #[test]
    fn parallel_recursive_occurrences_rejected() {
        // A -> body containing A twice: two parallel P(G) edges A -> A,
        // i.e. two cycles sharing A.
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.composite("A");
        b.production("S", |w| {
            w.node("A");
        });
        b.production("A", |w| {
            let x = w.node("t");
            let a1 = w.node("A");
            let a2 = w.node("A");
            let y = w.node("t");
            w.edge_named(x, a1, "A");
            w.edge_named(x, a2, "A");
            w.edge_named(a1, y, "t");
            w.edge_named(a2, y, "t");
        });
        b.production("A", |w| {
            w.node("t");
        });
        b.start("S");
        let spec = b.build().unwrap();
        assert!(!spec.is_strictly_linear());
    }

    #[test]
    fn acyclic_spec_has_no_cycles() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("t");
            w.edge_named(x, y, "t");
        });
        b.start("S");
        let spec = b.build().unwrap();
        assert!(spec.is_strictly_linear());
        assert!(!spec.is_recursive());
    }

    #[test]
    fn production_graph_edge_counts() {
        let spec = fig2();
        let pg = spec.production_graph();
        // W1 has 4 nodes, W2 3, W3 2, W4 2 → 11 edges.
        assert_eq!(pg.n_edges(), 11);
        let s = spec.module_by_name("S").unwrap();
        assert_eq!(pg.edges_from(s).len(), 4);
    }
}
