//! Simple workflows: the DAG bodies of workflow productions.
//!
//! A simple workflow `W = (V, E)` (Definition 1) has module occurrences as
//! nodes and tagged data edges. In the coarse-grained model of Section
//! III-A each body is a DAG with a unique source and unique sink: node
//! replacement attaches the replaced node's incoming edges to the source
//! instance and its outgoing edges to the sink instance, giving every
//! sub-run a single entry and a single exit node — the structural property
//! the labeling scheme exploits.

use crate::spec::{ModuleId, Tag};
use serde::{Deserialize, Serialize};

/// A tagged data edge between two body positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BodyEdge {
    /// Source position (index into the body's node list).
    pub src: u32,
    /// Target position.
    pub dst: u32,
    /// Data name flowing over the edge.
    pub tag: Tag,
}

/// The body of a production: a DAG of module occurrences.
///
/// Positions (indices into [`SimpleWorkflow::nodes`]) are the unit the
/// labeling scheme works with: a label entry `(k, i)` means "the i-th node
/// of production k's body" (the paper fixes an arbitrary topological
/// ordering; we require the node list itself to be topologically sorted,
/// which the builder verifies).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimpleWorkflow {
    nodes: Vec<ModuleId>,
    edges: Vec<BodyEdge>,
    /// Position of the unique source (in-degree 0).
    source: u32,
    /// Position of the unique sink (out-degree 0).
    sink: u32,
    /// `reach[i * n + j]`: does position `i` reach position `j` through
    /// body edges (reflexive)? Cached transitive closure; bodies are small
    /// (`n` ≤ tens), so a dense bitset-free matrix is fine.
    reach: Vec<bool>,
}

impl SimpleWorkflow {
    /// Build a simple workflow, computing the cached analyses.
    ///
    /// The caller (builder/validation) must have verified that the node
    /// list is topologically sorted w.r.t. `edges`, that the DAG has a
    /// unique source and sink, and that parallel edges carry distinct
    /// tags. Panics on a non-topological node order in debug builds.
    pub(crate) fn new(nodes: Vec<ModuleId>, edges: Vec<BodyEdge>) -> SimpleWorkflow {
        debug_assert!(
            edges.iter().all(|e| e.src < e.dst),
            "body nodes must be listed in topological order"
        );
        let n = nodes.len();
        let mut indeg = vec![0usize; n];
        let mut outdeg = vec![0usize; n];
        for e in &edges {
            outdeg[e.src as usize] += 1;
            indeg[e.dst as usize] += 1;
        }
        let source = indeg.iter().position(|&d| d == 0).expect("validated") as u32;
        let sink = outdeg.iter().rposition(|&d| d == 0).expect("validated") as u32;

        // Reflexive-transitive closure, processing targets in reverse
        // topological order.
        let mut reach = vec![false; n * n];
        for i in 0..n {
            reach[i * n + i] = true;
        }
        for e in edges.iter().rev() {
            let (s, d) = (e.src as usize, e.dst as usize);
            for j in 0..n {
                if reach[d * n + j] {
                    reach[s * n + j] = true;
                }
            }
        }
        SimpleWorkflow {
            nodes,
            edges,
            source,
            sink,
            reach,
        }
    }

    /// Number of module occurrences.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Module occupying position `i`.
    #[inline]
    pub fn node(&self, i: usize) -> ModuleId {
        self.nodes[i]
    }

    /// All positions in (topological) order.
    pub fn nodes(&self) -> &[ModuleId] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[BodyEdge] {
        &self.edges
    }

    /// The unique source position.
    pub fn source(&self) -> usize {
        self.source as usize
    }

    /// The unique sink position.
    pub fn sink(&self) -> usize {
        self.sink as usize
    }

    /// Reflexive-transitive reachability between positions — "the i-th
    /// node reaches the j-th node on the right-hand side of the
    /// production" from Algorithm 2, Case 1.
    #[inline]
    pub fn reaches(&self, i: usize, j: usize) -> bool {
        self.reach[i * self.nodes.len() + j]
    }

    /// Outgoing edges of position `i`.
    pub fn edges_from(&self, i: usize) -> impl Iterator<Item = &BodyEdge> {
        let i = i as u32;
        self.edges.iter().filter(move |e| e.src == i)
    }

    /// Incoming edges of position `i`.
    pub fn edges_into(&self, i: usize) -> impl Iterator<Item = &BodyEdge> {
        let i = i as u32;
        self.edges.iter().filter(move |e| e.dst == i)
    }

    /// Positions holding a given module.
    pub fn positions_of(&self, module: ModuleId) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, &m)| m == module)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId(i)
    }

    fn t(i: u32) -> Tag {
        Tag(i)
    }

    fn chain3() -> SimpleWorkflow {
        SimpleWorkflow::new(
            vec![m(0), m(1), m(2)],
            vec![
                BodyEdge {
                    src: 0,
                    dst: 1,
                    tag: t(0),
                },
                BodyEdge {
                    src: 1,
                    dst: 2,
                    tag: t(1),
                },
            ],
        )
    }

    #[test]
    fn source_and_sink_of_chain() {
        let w = chain3();
        assert_eq!(w.source(), 0);
        assert_eq!(w.sink(), 2);
    }

    #[test]
    fn reachability_is_reflexive_transitive() {
        let w = chain3();
        for i in 0..3 {
            assert!(w.reaches(i, i));
        }
        assert!(w.reaches(0, 2));
        assert!(!w.reaches(2, 0));
        assert!(!w.reaches(1, 0));
    }

    #[test]
    fn diamond_reachability() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
        let w = SimpleWorkflow::new(
            vec![m(0), m(1), m(2), m(3)],
            vec![
                BodyEdge {
                    src: 0,
                    dst: 1,
                    tag: t(0),
                },
                BodyEdge {
                    src: 0,
                    dst: 2,
                    tag: t(0),
                },
                BodyEdge {
                    src: 1,
                    dst: 3,
                    tag: t(0),
                },
                BodyEdge {
                    src: 2,
                    dst: 3,
                    tag: t(0),
                },
            ],
        );
        assert!(w.reaches(0, 3));
        assert!(!w.reaches(1, 2));
        assert!(!w.reaches(2, 1));
        assert_eq!(w.source(), 0);
        assert_eq!(w.sink(), 3);
    }

    #[test]
    fn singleton_body() {
        let w = SimpleWorkflow::new(vec![m(5)], vec![]);
        assert_eq!(w.source(), 0);
        assert_eq!(w.sink(), 0);
        assert!(w.reaches(0, 0));
    }

    #[test]
    fn edge_iterators() {
        let w = chain3();
        assert_eq!(w.edges_from(0).count(), 1);
        assert_eq!(w.edges_from(2).count(), 0);
        assert_eq!(w.edges_into(2).count(), 1);
        assert_eq!(w.edges_into(0).count(), 0);
    }

    #[test]
    fn positions_of_finds_duplicates() {
        let w = SimpleWorkflow::new(
            vec![m(1), m(7), m(1)],
            vec![
                BodyEdge {
                    src: 0,
                    dst: 1,
                    tag: t(0),
                },
                BodyEdge {
                    src: 1,
                    dst: 2,
                    tag: t(0),
                },
            ],
        );
        assert_eq!(w.positions_of(m(1)).collect::<Vec<_>>(), vec![0, 2]);
    }
}
