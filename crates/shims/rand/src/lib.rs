//! Offline stand-in for `rand` (0.8-style API surface).
//!
//! The workspace only needs seeded, reproducible pseudo-randomness for
//! workload generation — no cryptographic or statistical guarantees.
//! [`rngs::SmallRng`] is a SplitMix64 generator; [`Rng::gen_range`]
//! supports half-open and inclusive integer ranges, [`Rng::gen_bool`]
//! Bernoulli draws, and [`seq::SliceRandom::shuffle`] Fisher–Yates.
//!
//! Determinism note: streams differ from the real `rand` crate's
//! `SmallRng`, which is fine — every consumer seeds explicitly and only
//! relies on reproducibility, not on specific sequences.

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from an integer range (`a..b` or `a..=b`).
    ///
    /// As in rand 0.8, the element type is an independent parameter so
    /// inference can flow from how the result is used, not just from
    /// the range literal's default type.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, as the real crate does.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Element types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)` or `[start, end]`.
    fn sample_between<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_between(rng, start, end, true)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span =
                    (end as i128 - start as i128 + i128::from(inclusive)) as u128;
                if span == 0 || span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return (start as i128).wrapping_add(rng.next_u64() as i128) as $t;
                }
                // Modulo bias is irrelevant for workload generation.
                (start as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the workspace never needs a cryptographically secure
    /// generator, so `StdRng` shares the `SmallRng` engine.
    pub type StdRng = SmallRng;
}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0..10usize);
            assert_eq!(x, b.gen_range(0..10usize));
            assert!(x < 10);
            let y = a.gen_range(3..=5u32);
            assert_eq!(y, b.gen_range(3..=5u32));
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
