//! Offline stand-in for `bytes`.
//!
//! [`Bytes`]/[`BytesMut`] are thin wrappers over `Vec<u8>` — none of
//! the real crate's refcounted zero-copy slicing is needed here, only
//! the byte-buffer API the label codec uses: `with_capacity`,
//! `put_u8`, `freeze`, plus [`Buf`] cursor reads over `&[u8]`.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Cursor-style reads.
pub trait Buf {
    /// Any bytes left?
    fn has_remaining(&self) -> bool;
    /// Pop the next byte (panics when exhausted, as the real crate does).
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn has_remaining(&self) -> bool {
        !self.is_empty()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("buffer exhausted");
        *self = rest;
        *first
    }
}

/// Buffer writes.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, byte: u8);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, byte: u8) {
        self.0.push(byte);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut buf = BytesMut::with_capacity(4);
        for b in [1u8, 2, 3] {
            buf.put_u8(b);
        }
        assert_eq!(buf.len(), 3);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        let mut out = Vec::new();
        while cursor.has_remaining() {
            out.push(cursor.get_u8());
        }
        assert_eq!(out, vec![1, 2, 3]);
    }
}
