//! Offline stand-in for `serde_json`: renders the shim `serde::Value`
//! data model to JSON text and parses it back.
//!
//! Only the two entry points the workspace uses are provided:
//! [`to_string`] and [`from_str`]. The JSON dialect is standard; map
//! order is preserved, floats print with shortest-round-trip formatting.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is shortest-round-trip for f64.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Bytes(bytes) => {
            // JSON has no binary type: render as an array of numbers,
            // for display only. (Parsing returns a Seq of UInts, which
            // bytes-consuming types reject — packed payloads round-trip
            // through the binary codec, not JSON.)
            out.push('[');
            for (i, b) in bytes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push(']');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }
}
