//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (a `serde::Value`-tree data model rather than serde's streaming
//! one). Because `syn`/`quote` are unavailable offline, the input token
//! stream is parsed by hand into a small shape description, and the
//! impls are rendered as strings.
//!
//! Supported shapes — the ones this workspace uses:
//!
//! * named-field structs (with `#[serde(skip)]` fields restored via
//!   `Default::default()` on deserialization);
//! * newtype structs (serialized transparently) and tuple structs
//!   (serialized as sequences);
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching serde_json's default representation).
//!
//! Generics are not supported; none of the workspace's serialized types
//! are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a named-field struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed derive target.
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Target {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    render_serialize(&target)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    render_deserialize(&target)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility to reach `struct` / `enum`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate)
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            other => panic!("serde_derive shim: unexpected token {other}"),
        }
    }
    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported ({name})");
        }
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_variants(g.stream()))
            } else {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        other => panic!("serde_derive shim: unexpected body for {name}: {other:?}"),
    };
    Target { name, shape }
}

/// Parse `field: Type, ...` lists, honoring `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Leading attributes (docs, serde markers).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                skip |= attr_is_serde_skip(g.stream());
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        i += 1; // name
        i += 1; // ':'
                // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Is this bracketed attribute content `serde(... skip ...)`?
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    commas + 1 - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2; // attribute
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Separator comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

fn render_serialize(target: &Target) -> String {
    let name = &target.name;
    let body = match &target.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => render_fields_to_map(fields, "self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_owned()),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_owned()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_owned(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let payload = render_fields_to_map(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\"{vname}\".to_owned(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// `Value::Map` construction for named fields; `prefix` is `self.` for
/// structs and empty for destructured struct-variant bindings.
fn render_fields_to_map(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let fname = &f.name;
            format!("(\"{fname}\".to_owned(), ::serde::Serialize::to_value(&{prefix}{fname}))")
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn render_deserialize(target: &Target) -> String {
    let name = &target.name;
    let body = match &target.shape {
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_seq()\
                     .ok_or_else(|| ::serde::DeError::expected(\"sequence\", __value))?;\n\
                 if __items.len() != {n} {{\n\
                     return Err(::serde::DeError::custom(format!(\n\
                         \"{name}: expected {n} elements, got {{}}\", __items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            format!(
                "Ok({name} {{ {} }})",
                render_fields_from_map(name, fields, "__value")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __items = __payload.as_seq()\
                                         .ok_or_else(|| ::serde::DeError::expected(\"sequence\", __payload))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::DeError::custom(\n\
                                             \"{name}::{vname}: wrong arity\".to_owned()));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {} }}),",
                            render_fields_from_map(name, fields, "__payload")
                        )),
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => Err(::serde::DeError::custom(format!(\n\
                             \"{name}: unknown variant {{__other}}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => Err(::serde::DeError::custom(format!(\n\
                                 \"{name}: unknown variant {{__other}}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::DeError::expected(\"enum\", __other)),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Field initializers for a named-field struct or struct variant.
fn render_fields_from_map(ty: &str, fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.skip {
                format!("{fname}: ::std::default::Default::default()")
            } else {
                format!(
                    "{fname}: ::serde::Deserialize::from_value({source}.get_field(\"{fname}\")\
                         .ok_or_else(|| ::serde::DeError::missing(\"{ty}\", \"{fname}\"))?)?"
                )
            }
        })
        .collect();
    inits.join(", ")
}
