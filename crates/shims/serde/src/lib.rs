//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this local crate
//! provides the small slice of serde the workspace actually uses: a
//! `Serialize`/`Deserialize` trait pair over an in-memory [`Value`]
//! data model, plus derive macros (re-exported from the sibling
//! `serde_derive` shim) that understand `#[serde(skip)]`.
//!
//! The data model is deliberately simple — every serializable type
//! lowers to a [`Value`] tree, and `serde_json` (also shimmed) renders
//! that tree to/from JSON text. This loses serde's zero-copy streaming,
//! which none of the workspace needs, and keeps the derive macro small
//! enough to hand-roll without `syn`/`quote`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::sync::Arc;

/// The in-memory serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (used by `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed (negative) integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A packed byte buffer — the data model's escape hatch for
    /// integer-dense payloads (index arrays, adjacency arenas) whose
    /// element-wise [`Value::Seq`] form costs an enum per number on
    /// both ends. Binary codecs store it verbatim; JSON renders it as
    /// an array of byte values for display only (a JSON parse returns
    /// a `Seq`, which bytes-consuming types reject rather than
    /// mis-decode element-wise).
    Bytes(Vec<u8>),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, enum payloads).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup in a [`Value::Map`].
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The sequence elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A custom error message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// A struct field was absent.
    pub fn missing(ty: &str, field: &str) -> DeError {
        DeError(format!("{ty}: missing field `{field}`"))
    }

    /// The value had the wrong shape.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lower to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_seq().ok_or_else(|| DeError::expected("tuple", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
