//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter_map` / `prop_recursive` combinators, range and tuple
//! strategies, [`Just`], `prop_oneof!`, `prop::collection::vec`, the
//! [`ProptestConfig`] knob for case counts, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is **no shrinking** — a failing case
//! panics with the sampled inputs Debug-printed by the assertion
//! message. Generation is deterministic per test (the RNG is seeded
//! from the test function's name), so failures reproduce exactly.

use std::rc::Rc;

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Deterministic per-test seed from the test name (FNV-1a).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Cap on filtered-out samples before the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

/// A value generator. `sample` returns `None` when the drawn value was
/// rejected by a filter; the harness redraws.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value (or a rejection).
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Map generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filter and map in one step; `None` rejects the sample.
    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    /// Recursive strategies: `f` builds a composite from an inner
    /// strategy; nesting is bounded by `levels`. The remaining two
    /// parameters (target size, expected branch factor) are accepted
    /// for signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        levels: u32,
        _target_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut composite = leaf.clone();
        for _ in 0..levels {
            let inner = OneOf::new(vec![leaf.clone(), composite]).boxed();
            composite = f(inner).boxed();
        }
        OneOf::new(vec![leaf, composite]).boxed()
    }

    /// Type-erase (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply-cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// [`Strategy::prop_filter_map`] adapter.
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from the alternatives (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128 + 1) as u64;
                Some(start + rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// `Vec` strategy with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.clone().sample(rng)?;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert within a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property-test harness macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness ($config) $($rest)*);
    };
    (@harness ($config:expr)) => {};
    (@harness ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                $(
                    let $arg = {
                        let __strategy = $strategy;
                        match $crate::Strategy::sample(&__strategy, &mut __rng) {
                            Some(value) => value,
                            None => {
                                __rejected += 1;
                                assert!(
                                    __rejected <= __config.max_global_rejects,
                                    "proptest shim: too many rejected samples in {}",
                                    stringify!($name),
                                );
                                continue;
                            }
                        }
                    };
                )+
                __accepted += 1;
                $body
            }
        }
        $crate::proptest!(@harness ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@harness ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_filter_map("even", |n| if n % 2 == 0 { Some(n) } else { None })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..=7, b in 10u64..20) {
            prop_assert!((3..=7).contains(&a));
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn filter_map_filters(n in small_even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        impl Tree {
            fn depth(&self) -> usize {
                match self {
                    Tree::Leaf(n) => usize::from(*n < 10),
                    Tree::Node(children) => 1 + children.iter().map(Tree::depth).max().unwrap_or(0),
                }
            }
        }
        let strategy = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = super::TestRng::new(42);
        for _ in 0..200 {
            let t = strategy.sample(&mut rng).expect("no filters");
            assert!(t.depth() <= 5, "depth bound violated: {t:?}");
        }
    }
}
