//! Offline stand-in for `criterion`.
//!
//! Implements just enough of the criterion 0.5 API for the workspace's
//! bench targets (`harness = false`) to compile and produce useful
//! numbers: benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical
//! machinery it reports the best and average wall time over a small,
//! configurable number of samples.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_benchmark(&id.into().0, 10, f);
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, f);
    }

    /// Time a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; calls [`Bencher::iter`] to run the
/// measured routine.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, retaining per-sample wall times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up invocation, then the timed samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let best = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    let avg = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    println!(
        "{label:<48} best {}  avg {}  ({} samples)",
        fmt_secs(best),
        fmt_secs(avg),
        b.samples.len()
    );
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:7.2}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:7.2}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:7.2}ms", s * 1e3)
    } else {
        format!("{s:7.2}s ")
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench-target `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
