#![warn(missing_docs)]

//! Workloads: specifications, runs and queries for experiments and tests.
//!
//! * [`paper_examples`] — the worked examples of the paper (Fig. 2,
//!   Fig. 5, Fig. 14) plus hand-built multi-phase recursion specs;
//! * [`synthetic`] — the random specification generator behind the
//!   overhead experiments ("we create a set of synthetic workflows while
//!   varying workflow parameters", Section V-A);
//! * [`realistic`] — deterministic stand-ins for the myExperiment
//!   workflows **BioAID** and **QBLast**, built to the statistics the
//!   paper reports (see DESIGN.md for the substitution argument);
//! * [`queries`] — IFQ / Kleene-star / random query generators with
//!   selectivity steering;
//! * [`runs`] — run-simulation conveniences shared by benches and tests.

pub mod paper_examples;
pub mod queries;
pub mod realistic;
pub mod runs;
pub mod synthetic;

pub use queries::QueryGen;
pub use realistic::{bioaid_like, qblast_like, RealisticSpec};
pub use synthetic::{SynthParams, SynthesizedSpec};
