//! Deterministic stand-ins for the paper's myExperiment datasets.
//!
//! myExperiment hosts the real **BioAID** and **QBLast** Taverna
//! workflows, but neither the workflows' graph structure nor executions
//! are redistributable here; the paper itself reports only aggregate
//! statistics and simulates all runs. These constructors synthesize
//! specifications matching the published statistics exactly:
//!
//! * **BioAID**: size 166, 112 modules (16 composite), 23 productions
//!   (7 recursive), "deep";
//! * **QBLast**: size 105, 77 modules (11 composite), 15 productions
//!   (5 recursive), "branchy".
//!
//! Depth vs. branchiness is steered through body shapes (chains vs.
//! diamonds); every remaining behaviour the experiments measure depends
//! only on these statistics, which tests pin down.

use crate::synthetic::{generate, SynthParams, SynthesizedSpec};
use rpq_grammar::Specification;

/// A realistic stand-in specification with its query handles.
#[derive(Debug)]
pub struct RealisticSpec {
    /// The specification.
    pub spec: Specification,
    /// Chain tags of the recursive productions (Kleene-star targets),
    /// one per cycle.
    pub cycle_tags: Vec<String>,
    /// Base tag pool; IFQs over these tags are safe by construction.
    pub pool_tags: Vec<String>,
    /// Dataset display name.
    pub name: &'static str,
}

/// BioAID-like specification ("deep": long chain bodies, low branching).
pub fn bioaid_like() -> RealisticSpec {
    let s = tuned(
        SynthParams {
            n_atomic: 96,
            n_composite: 16,
            n_self_cycles: 7,
            n_two_cycles: 0,
            body_nodes: (4, 8),
            extra_edge_prob: 0.06,
            composite_ref_prob: 0.0,
            n_tags: 24,
            alt_production_per_mille: 0,
            seed: 0xB10A1D,
        },
        166,
        23,
    );
    RealisticSpec {
        spec: s.spec,
        cycle_tags: s.cycle_tags,
        pool_tags: s.pool_tags,
        name: "BioAID",
    }
}

/// QBLast-like specification ("branchy": wide diamond bodies).
pub fn qblast_like() -> RealisticSpec {
    let s = tuned(
        SynthParams {
            n_atomic: 66,
            n_composite: 11,
            // 3 self-cycles + one A→B→A cycle = 5 recursive productions
            // in 15 total, matching the published QBLast statistics.
            n_self_cycles: 3,
            n_two_cycles: 1,
            body_nodes: (4, 8),
            extra_edge_prob: 0.45,
            composite_ref_prob: 0.0,
            n_tags: 18,
            alt_production_per_mille: 0,
            seed: 0x0B1A57,
        },
        105,
        15,
    );
    RealisticSpec {
        spec: s.spec,
        cycle_tags: s.cycle_tags,
        pool_tags: s.pool_tags,
        name: "QBLast",
    }
}

/// Search nearby seeds until the generated spec hits the published size
/// and production count exactly. With `alt_production_per_mille = 0` the
/// production count is `n_composite + n_recursive` deterministically, so
/// only the size needs tuning; a handful of seed probes suffices.
fn tuned(base: SynthParams, want_size: usize, want_productions: usize) -> SynthesizedSpec {
    // plain + 2·self + 3·pairs productions:
    debug_assert_eq!(
        (base.n_composite - base.n_self_cycles - 2 * base.n_two_cycles)
            + 2 * base.n_self_cycles
            + 3 * base.n_two_cycles,
        want_productions
    );
    for probe in 0..20_000u64 {
        let params = SynthParams {
            seed: base.seed.wrapping_add(probe),
            ..base.clone()
        };
        let s = generate(&params);
        if s.spec.size() == want_size {
            debug_assert_eq!(s.spec.productions().len(), want_productions);
            return s;
        }
    }
    panic!("no seed within probe budget produced size {want_size}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bioaid_statistics_match_the_paper() {
        let b = bioaid_like();
        assert_eq!(b.spec.size(), 166);
        assert_eq!(b.spec.n_modules(), 112);
        assert_eq!(b.spec.n_composite(), 16);
        assert_eq!(b.spec.productions().len(), 23);
        assert_eq!(b.spec.n_recursive_productions(), 7);
        assert!(b.spec.is_strictly_linear());
    }

    #[test]
    fn qblast_statistics_match_the_paper() {
        let q = qblast_like();
        assert_eq!(q.spec.size(), 105);
        assert_eq!(q.spec.n_modules(), 77);
        assert_eq!(q.spec.n_composite(), 11);
        assert_eq!(q.spec.productions().len(), 15);
        assert_eq!(q.spec.n_recursive_productions(), 5);
        assert!(q.spec.is_strictly_linear());
    }

    #[test]
    fn both_derive_runs_of_paper_sizes() {
        for r in [bioaid_like(), qblast_like()] {
            for target in [1000usize, 2000] {
                let run = rpq_labeling::RunBuilder::new(&r.spec)
                    .seed(7)
                    .target_edges(target)
                    .build()
                    .unwrap();
                assert!(run.n_edges() >= target, "{} {}", r.name, target);
                assert!(run.is_acyclic());
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(bioaid_like().spec, bioaid_like().spec);
        assert_eq!(qblast_like().spec, qblast_like().spec);
    }
}
