//! Query generators: IFQs, Kleene stars and random combinations.
//!
//! Section V-A: the experiments use (1) IFQs `⎵* a1 ⎵* … ak ⎵*`, (2)
//! Kleene stars `a*` targeting fork/loop recursions, and (3) queries
//! generated "by randomly combining edge tags using concatenation,
//! union, and Kleene star".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_automata::{Regex, Symbol};
use rpq_grammar::{Specification, Tag};
use rpq_relalg::TagIndex;

/// Seeded query generator bound to a specification's tag alphabet.
pub struct QueryGen<'a> {
    spec: &'a Specification,
    rng: SmallRng,
}

impl<'a> QueryGen<'a> {
    /// New generator.
    pub fn new(spec: &'a Specification, seed: u64) -> QueryGen<'a> {
        QueryGen {
            spec,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn random_symbol(&mut self) -> Symbol {
        Symbol(self.rng.gen_range(0..self.spec.n_tags() as u32))
    }

    /// An IFQ with `k` random symbols.
    pub fn ifq(&mut self, k: usize) -> Regex {
        let syms: Vec<Symbol> = (0..k).map(|_| self.random_symbol()).collect();
        Regex::ifq(&syms)
    }

    /// An IFQ with `k` symbols drawn from a restricted tag-name set
    /// (e.g. a dataset's safe base pool).
    pub fn ifq_over(&mut self, tag_names: &[String], k: usize) -> Regex {
        assert!(!tag_names.is_empty(), "empty tag set");
        let syms: Vec<Symbol> = (0..k)
            .map(|_| {
                let name = &tag_names[self.rng.gen_range(0..tag_names.len())];
                Symbol(self.spec.tag_by_name(name).expect("tag exists").0)
            })
            .collect();
        Regex::ifq(&syms)
    }

    /// An IFQ whose symbols are drawn by run selectivity: `high_sel`
    /// picks rare tags (few matching edges → small intermediate lists),
    /// otherwise frequent tags. Mirrors the paper's "highly selective /
    /// lowly selective" query split in Fig. 13e/13f.
    pub fn ifq_by_selectivity(&mut self, k: usize, index: &TagIndex, high_sel: bool) -> Regex {
        let mut tags: Vec<(usize, Tag)> = (0..self.spec.n_tags())
            .map(|t| (index.count(Tag(t as u32)), Tag(t as u32)))
            .filter(|(c, _)| *c > 0)
            .collect();
        tags.sort_unstable_by_key(|&(c, _)| c);
        if !high_sel {
            tags.reverse();
        }
        // Draw from the extreme third of the distribution.
        let pool = &tags[..(tags.len().div_ceil(3)).max(1).min(tags.len())];
        let syms: Vec<Symbol> = (0..k)
            .map(|_| Symbol(pool[self.rng.gen_range(0..pool.len())].1 .0))
            .collect();
        Regex::ifq(&syms)
    }

    /// `tag*` for a named tag — the Kleene-star workload.
    pub fn kleene_star(&self, tag_name: &str) -> Option<Regex> {
        let tag = self.spec.tag_by_name(tag_name)?;
        Some(Regex::star(Regex::Sym(Symbol(tag.0))))
    }

    /// Random query combining tags with concatenation, union and star,
    /// with approximately `size` AST leaves.
    pub fn random_query(&mut self, size: usize) -> Regex {
        self.random_rec(size.max(1))
    }

    fn random_rec(&mut self, budget: usize) -> Regex {
        if budget <= 1 {
            return match self.rng.gen_range(0..10) {
                0 => Regex::Wildcard,
                1 => Regex::any_star(),
                _ => Regex::Sym(self.random_symbol()),
            };
        }
        match self.rng.gen_range(0..10) {
            // Concatenation (most common, as in IFQs).
            0..=4 => {
                let left = budget / 2;
                Regex::concat(vec![self.random_rec(left), self.random_rec(budget - left)])
            }
            // Union.
            5..=7 => {
                let left = budget / 2;
                Regex::alt(vec![self.random_rec(left), self.random_rec(budget - left)])
            }
            // Star / plus.
            8 => Regex::star(self.random_rec(budget - 1)),
            _ => Regex::plus(self.random_rec(budget - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples::fig2_spec;

    #[test]
    fn ifq_shapes() {
        let spec = fig2_spec();
        let mut g = QueryGen::new(&spec, 1);
        let q0 = g.ifq(0);
        assert_eq!(q0, Regex::any_star());
        let q3 = g.ifq(3);
        assert!(q3.symbols().len() <= 3);
        // Concat node + 3 symbols + 4 stars over wildcards.
        assert_eq!(q3.size(), 1 + 3 + 4 * 2);
    }

    #[test]
    fn kleene_star_lookup() {
        let spec = fig2_spec();
        let g = QueryGen::new(&spec, 2);
        assert!(g.kleene_star("a").is_some());
        assert!(g.kleene_star("zzz").is_none());
    }

    #[test]
    fn random_queries_are_reproducible_and_varied() {
        let spec = fig2_spec();
        let mut g1 = QueryGen::new(&spec, 7);
        let mut g2 = QueryGen::new(&spec, 7);
        let qs1: Vec<Regex> = (0..20).map(|_| g1.random_query(6)).collect();
        let qs2: Vec<Regex> = (0..20).map(|_| g2.random_query(6)).collect();
        assert_eq!(qs1, qs2);
        let distinct: std::collections::HashSet<String> =
            qs1.iter().map(|q| format!("{q:?}")).collect();
        assert!(distinct.len() > 5, "queries lack variety");
    }

    #[test]
    fn selectivity_steering_picks_from_extremes() {
        use rpq_labeling::RunBuilder;
        let spec = fig2_spec();
        let run = RunBuilder::new(&spec)
            .seed(1)
            .target_edges(400)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let mut g = QueryGen::new(&spec, 3);
        let high = g.ifq_by_selectivity(1, &index, true);
        let low = g.ifq_by_selectivity(1, &index, false);
        let count_of = |r: &Regex| {
            let syms = r.symbols();
            index.count(Tag(syms[0].0))
        };
        assert!(count_of(&high) <= count_of(&low));
    }
}
