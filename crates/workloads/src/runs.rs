//! Run-simulation conveniences shared by benches, examples and tests,
//! plus deterministic **graph corpora** (deep chains, wide DAGs, cyclic
//! cores, multi-SCC tangles) for the closure-kernel differential tests
//! and the `repro -- relalg` scc bench leg.

use rpq_grammar::Specification;
use rpq_labeling::{DeriveError, EventBatch, ForkFocus, NodeId, Run, RunBuilder, RunEdge, RunNode};
use rpq_relalg::NodePairSet;

/// Simulate a run of roughly `target_edges` edges (the paper's random
/// production firing).
pub fn simulate(spec: &Specification, target_edges: usize, seed: u64) -> Result<Run, DeriveError> {
    RunBuilder::new(spec)
        .seed(seed)
        .target_edges(target_edges)
        .build()
}

/// Simulate a fork-heavy run: the designated cycle is unfolded until the
/// run reaches roughly `target_edges` edges, every other recursion fires
/// once (the Fig. 13g/13h workload).
pub fn simulate_fork(
    spec: &Specification,
    cycle: usize,
    target_edges: usize,
    seed: u64,
) -> Result<Run, DeriveError> {
    // Estimate unfoldings from the cycle production's body size.
    let rec = spec.recursion();
    let edges_per_unfold: usize = rec.cycles[cycle]
        .edges
        .iter()
        .map(|e| spec.production(e.production).body.edges().len())
        .sum::<usize>()
        .max(1);
    let unfoldings = (target_edges / edges_per_unfold).max(1) as u64;
    RunBuilder::new(spec)
        .policy(ForkFocus::new(cycle, unfoldings, seed))
        .target_edges(target_edges)
        .build()
}

/// Simulate a corpus of `n_runs` structurally distinct runs for store
/// ingestion and batch benchmarks.
///
/// Seeds vary per run *and* target sizes ramp in small strides (from
/// `target_edges` up to roughly `1.5 × target_edges`): small grammars
/// can derive structurally identical runs from different seeds at one
/// target size, and identical structure would (correctly) deduplicate
/// away inside a `RunStore` — the ramp guarantees distinct
/// fingerprints without changing the corpus's size class.
pub fn corpus(
    spec: &Specification,
    n_runs: usize,
    target_edges: usize,
    seed: u64,
) -> Result<Vec<Run>, DeriveError> {
    let stride = (target_edges / (2 * n_runs.max(1))).max(4);
    (0..n_runs)
        .map(|i| simulate(spec, target_edges + i * stride, seed + i as u64))
        .collect()
}

/// Slice a finished run into a streaming arrival: a base prefix run
/// plus `n_batches` [`EventBatch`]es that grow it back to the full run.
///
/// The cut points are node-id prefixes, so every intermediate state is
/// the induced subgraph on a prefix of the final id space: node ids in
/// the streamed run match the final run exactly, and each edge lands in
/// the earliest batch where both its endpoints exist. Replaying the
/// batches through `Run::apply_events` therefore reproduces the
/// original node list and edge *set* (edge order differs — edges are
/// grouped by arrival batch — so the structural fingerprint may too,
/// but every derived index is a pure function of the pair sets and
/// comes out identical). Errors only if some prefix has no source or
/// sink, which cannot happen for derivation-produced DAGs.
pub fn event_stream(run: &Run, n_batches: usize) -> Result<(Run, Vec<EventBatch>), String> {
    let n = run.n_nodes();
    let segments = n_batches + 1;
    // Prefix node count after each segment: roughly equal slices, the
    // base always keeping at least one node, monotone up to n.
    let cuts: Vec<usize> = (1..=segments)
        .map(|k| (n * k).div_ceil(segments).clamp(1, n.max(1)))
        .collect();
    let mut batch_edges: Vec<Vec<RunEdge>> = vec![Vec::new(); segments];
    for &e in run.edges() {
        let bound = e.src.index().max(e.dst.index());
        // The first segment whose prefix contains both endpoints.
        let k = cuts.partition_point(|&c| c <= bound);
        batch_edges[k].push(e);
    }
    let node_at = |i: usize| run.node(NodeId(i as u32)).clone();
    let base_nodes: Vec<RunNode> = (0..cuts[0]).map(node_at).collect();
    let mut edges = batch_edges.into_iter();
    let base = Run::assemble(base_nodes, edges.next().expect("segments >= 1"))?;
    let batches = cuts
        .windows(2)
        .zip(edges)
        .map(|(w, edges)| EventBatch {
            nodes: (w[0]..w[1]).map(node_at).collect(),
            edges,
        })
        .collect();
    Ok((base, batches))
}

/// Sample `n` node ids deterministically (stride sampling) — benchmark
/// input lists.
pub fn sample_nodes(run: &Run, n: usize, seed: u64) -> Vec<rpq_labeling::NodeId> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut all: Vec<rpq_labeling::NodeId> = run.node_ids().collect();
    all.shuffle(&mut rng);
    all.truncate(n);
    all
}

// ---------------------------------------------------------------------
// Graph corpora: raw node-pair relations with controlled SCC structure.
//
// These are *relations*, not grammar-derived runs: the closure kernels
// of `rpq-relalg` operate on arbitrary node-pair graphs (sub-query
// results cycle even over DAG runs), so their differential tests need
// shapes a workflow grammar cannot derive — giant cycles, multi-SCC
// tangles, self-loop forests. All generators are deterministic per
// seed and distinct across seeds (the analogue of `corpus`'s
// fingerprint-distinctness guarantee, unit-tested below).
// ---------------------------------------------------------------------

/// SplitMix64 — deterministic without pulling the rand shim into every
/// caller's seed plumbing.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniformly random relation with `n_pairs` pairs over `n_nodes`
/// (duplicates collapse in the pair set) — the dense-join workload of
/// the kernel benches.
pub fn random_relation(n_nodes: usize, n_pairs: usize, seed: u64) -> NodePairSet {
    let mut rng = seed;
    let pairs = (0..n_pairs)
        .map(|_| {
            let u = splitmix(&mut rng) as usize % n_nodes;
            let v = splitmix(&mut rng) as usize % n_nodes;
            (NodeId(u as u32), NodeId(v as u32))
        })
        .collect();
    NodePairSet::from_pairs(pairs)
}

/// A seeded permutation of `0..n` (Fisher–Yates), so structurally
/// identical shapes land on different node ids per seed.
fn permutation(n: usize, rng: &mut u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (splitmix(rng) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A single path through all `n_nodes` nodes (in seeded order): the
/// worst case for the semi-naive closure — `n` rounds, `O(n²)` closure
/// pairs — and the best case for condensation (`n` singleton
/// components, one bit pass).
pub fn deep_chain_relation(n_nodes: usize, seed: u64) -> NodePairSet {
    let mut rng = seed ^ 0xDEE9;
    let perm = permutation(n_nodes, &mut rng);
    NodePairSet::from_pairs(
        perm.windows(2)
            .map(|w| (NodeId(w[0]), NodeId(w[1])))
            .collect(),
    )
}

/// A layered DAG: `width` nodes per layer, each wired to `fanout`
/// random nodes of the next layer — the shape of fork-heavy provenance
/// runs, whose closures are deep *and* dense.
pub fn wide_dag_relation(n_nodes: usize, width: usize, fanout: usize, seed: u64) -> NodePairSet {
    let width = width.max(1);
    let mut rng = seed ^ 0xDA6;
    let mut pairs = Vec::new();
    let layers = n_nodes.div_ceil(width);
    for layer in 0..layers.saturating_sub(1) {
        let base = layer * width;
        let next_base = (layer + 1) * width;
        let next_width = width.min(n_nodes.saturating_sub(next_base));
        if next_width == 0 {
            break;
        }
        for u in base..(base + width).min(n_nodes) {
            for _ in 0..fanout {
                let v = next_base + (splitmix(&mut rng) as usize % next_width);
                pairs.push((NodeId(u as u32), NodeId(v as u32)));
            }
        }
    }
    NodePairSet::from_pairs(pairs)
}

/// A DAG chain with one cyclic core of `core_size` nodes spliced into
/// the middle — the paper's workflow regime (DAG-shaped runs with a
/// small loop), where condensation collapses the core to one component
/// row instead of discovering its `core²` pairs round by round.
pub fn cyclic_core_relation(n_nodes: usize, core_size: usize, seed: u64) -> NodePairSet {
    let mut rng = seed ^ 0xC0DE;
    let perm = permutation(n_nodes, &mut rng);
    let core_size = core_size.min(n_nodes);
    let core_start = (n_nodes - core_size) / 2;
    let mut pairs: Vec<(NodeId, NodeId)> = perm
        .windows(2)
        .map(|w| (NodeId(w[0]), NodeId(w[1])))
        .collect();
    if core_size > 1 {
        // Close the core: its last chain node loops back to its first.
        pairs.push((
            NodeId(perm[core_start + core_size - 1]),
            NodeId(perm[core_start]),
        ));
    } else if core_size == 1 && n_nodes > 0 {
        pairs.push((NodeId(perm[core_start]), NodeId(perm[core_start])));
    }
    NodePairSet::from_pairs(pairs)
}

/// A tangle of `n_comps` disjoint cycles (sizes drawn per seed, some
/// singletons with self-loops) connected by `extra_edges` random
/// cross-component edges directed from later to earlier components —
/// guaranteeing at least `n_comps` SCCs survive. The multi-SCC
/// workload of the three-way closure proptests.
pub fn multi_scc_relation(
    n_nodes: usize,
    n_comps: usize,
    extra_edges: usize,
    seed: u64,
) -> NodePairSet {
    let n_comps = n_comps.clamp(1, n_nodes.max(1));
    let mut rng = seed ^ 0x5CC;
    let perm = permutation(n_nodes, &mut rng);
    // Random component boundaries: pick n_comps-1 distinct cut points.
    let mut cuts: Vec<usize> = (1..n_nodes).collect();
    for i in (1..cuts.len()).rev() {
        let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
        cuts.swap(i, j);
    }
    let mut cuts: Vec<usize> = cuts.into_iter().take(n_comps - 1).collect();
    cuts.push(0);
    cuts.push(n_nodes);
    cuts.sort_unstable();
    cuts.dedup();

    let mut pairs = Vec::new();
    let comps: Vec<&[u32]> = cuts
        .windows(2)
        .map(|w| &perm[w[0]..w[1]])
        .filter(|m| !m.is_empty())
        .collect();
    for members in &comps {
        if members.len() == 1 {
            // Singleton: a coin decides between a self-loop (cyclic
            // component) and a bare node (acyclic singleton).
            if splitmix(&mut rng).is_multiple_of(2) {
                pairs.push((NodeId(members[0]), NodeId(members[0])));
            }
        } else {
            // A ring through the members.
            for w in members.windows(2) {
                pairs.push((NodeId(w[0]), NodeId(w[1])));
            }
            pairs.push((NodeId(members[members.len() - 1]), NodeId(members[0])));
        }
    }
    // Cross edges flow from higher component index to lower, so no new
    // cycle can form across components.
    if comps.len() > 1 {
        for _ in 0..extra_edges {
            let ci = 1 + (splitmix(&mut rng) as usize % (comps.len() - 1));
            let cj = splitmix(&mut rng) as usize % ci;
            let u = comps[ci][splitmix(&mut rng) as usize % comps[ci].len()];
            let v = comps[cj][splitmix(&mut rng) as usize % comps[cj].len()];
            pairs.push((NodeId(u), NodeId(v)));
        }
    }
    NodePairSet::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples::{fig2_spec, fork_spec};

    #[test]
    fn simulate_hits_target() {
        let spec = fig2_spec();
        let run = simulate(&spec, 500, 3).unwrap();
        assert!(run.n_edges() >= 500);
    }

    #[test]
    fn fork_simulation_unfolds_the_cycle() {
        let spec = fork_spec();
        let run = simulate_fork(&spec, 0, 400, 1).unwrap();
        let fork = spec.tag_by_name("fork").unwrap();
        let n_fork = run.edges().iter().filter(|e| e.tag == fork).count();
        assert!(n_fork >= 80, "only {n_fork} fork edges");
    }

    #[test]
    fn corpus_runs_are_structurally_distinct() {
        let spec = fig2_spec();
        let runs = corpus(&spec, 8, 100, 5).unwrap();
        assert_eq!(runs.len(), 8);
        let mut fingerprints: Vec<_> = runs.iter().map(|r| r.fingerprint()).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), 8, "corpus runs must not collide");
        assert_eq!(corpus(&spec, 0, 100, 5).unwrap().len(), 0);
    }

    type Generator = Box<dyn Fn(u64) -> NodePairSet>;

    #[test]
    fn graph_generators_are_deterministic_bounded_and_seed_distinct() {
        let gens: Vec<(&str, Generator)> = vec![
            ("chain", Box::new(|s| deep_chain_relation(97, s))),
            ("dag", Box::new(|s| wide_dag_relation(97, 8, 2, s))),
            ("core", Box::new(|s| cyclic_core_relation(97, 9, s))),
            ("tangle", Box::new(|s| multi_scc_relation(97, 7, 30, s))),
        ];
        for (name, gen) in &gens {
            // Deterministic per seed, bounded to the universe.
            assert_eq!(gen(3), gen(3), "{name}");
            assert!(
                gen(3).iter().all(|(u, v)| u.index() < 97 && v.index() < 97),
                "{name}"
            );
            assert!(!gen(3).is_empty(), "{name}");
            // Distinct across seeds — the graph analogue of `corpus`'s
            // fingerprint distinctness.
            let mut seen: Vec<NodePairSet> = Vec::new();
            for seed in 0..8 {
                let g = gen(seed);
                assert!(!seen.contains(&g), "{name}: seed {seed} collides");
                seen.push(g);
            }
        }
    }

    #[test]
    fn graph_generators_have_the_advertised_structure() {
        // The chain is one path: n-1 edges, every out-degree ≤ 1.
        let chain = deep_chain_relation(64, 1);
        assert_eq!(chain.len(), 63);

        // The cyclic core closes exactly one extra edge over the chain.
        let core = cyclic_core_relation(64, 8, 1);
        assert_eq!(core.len(), 64);

        // The tangle honors its component floor: rings only reach
        // backwards, so at least `n_comps` SCCs survive. Verify via the
        // condensation itself.
        let tangle = multi_scc_relation(80, 6, 25, 2);
        let csr = rpq_relalg::CsrRelation::from_pairs(&tangle, 80);
        let cond = rpq_relalg::Condensation::of(&csr);
        assert!(cond.n_comps() >= 6, "{}", cond.n_comps());
        assert!(cond.n_comps() < 80);
        assert!(cond.is_reverse_topological(&csr));

        // Degenerate sizes stay total.
        assert!(deep_chain_relation(0, 1).is_empty());
        assert!(deep_chain_relation(1, 1).is_empty());
        assert_eq!(cyclic_core_relation(1, 1, 1).len(), 1); // one self-loop
        assert!(multi_scc_relation(0, 3, 5, 1).is_empty());
        assert!(!multi_scc_relation(1, 1, 0, 4).iter().any(|(u, v)| u != v));
    }

    #[test]
    fn event_stream_replays_back_to_the_original_run() {
        let spec = fig2_spec();
        let run = simulate(&spec, 300, 7).unwrap();
        for n_batches in [0, 1, 3, 10] {
            let (base, batches) = event_stream(&run, n_batches).unwrap();
            assert_eq!(batches.len(), n_batches);
            assert!(base.n_nodes() >= 1);
            let mut grown = base;
            for batch in &batches {
                let next = grown.apply_events(batch).unwrap();
                assert!(next.n_nodes() >= grown.n_nodes());
                assert!(next.n_edges() >= grown.n_edges());
                grown = next;
            }
            // Same nodes in the same order, same edge set: every
            // derived index is identical even though edge order (and
            // hence the fingerprint) may differ.
            assert_eq!(grown.n_nodes(), run.n_nodes());
            assert_eq!(grown.n_edges(), run.n_edges());
            for id in run.node_ids() {
                assert_eq!(grown.node(id), run.node(id));
            }
            let idx_grown = rpq_relalg::TagIndex::build(&grown, spec.n_tags());
            let idx_run = rpq_relalg::TagIndex::build(&run, spec.n_tags());
            assert_eq!(idx_grown, idx_run);
            assert!(grown.validate_against(&spec).is_ok());
        }
        // Deterministic: slicing twice yields the same stream.
        let (a_base, a_batches) = event_stream(&run, 4).unwrap();
        let (b_base, b_batches) = event_stream(&run, 4).unwrap();
        assert_eq!(a_base.n_edges(), b_base.n_edges());
        assert_eq!(a_batches, b_batches);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let spec = fig2_spec();
        let run = simulate(&spec, 300, 3).unwrap();
        let a = sample_nodes(&run, 50, 9);
        let b = sample_nodes(&run, 50, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let all = sample_nodes(&run, 10_000_000, 9);
        assert_eq!(all.len(), run.n_nodes());
    }
}
