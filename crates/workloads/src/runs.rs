//! Run-simulation conveniences shared by benches, examples and tests.

use rpq_grammar::Specification;
use rpq_labeling::{DeriveError, ForkFocus, Run, RunBuilder};

/// Simulate a run of roughly `target_edges` edges (the paper's random
/// production firing).
pub fn simulate(spec: &Specification, target_edges: usize, seed: u64) -> Result<Run, DeriveError> {
    RunBuilder::new(spec)
        .seed(seed)
        .target_edges(target_edges)
        .build()
}

/// Simulate a fork-heavy run: the designated cycle is unfolded until the
/// run reaches roughly `target_edges` edges, every other recursion fires
/// once (the Fig. 13g/13h workload).
pub fn simulate_fork(
    spec: &Specification,
    cycle: usize,
    target_edges: usize,
    seed: u64,
) -> Result<Run, DeriveError> {
    // Estimate unfoldings from the cycle production's body size.
    let rec = spec.recursion();
    let edges_per_unfold: usize = rec.cycles[cycle]
        .edges
        .iter()
        .map(|e| spec.production(e.production).body.edges().len())
        .sum::<usize>()
        .max(1);
    let unfoldings = (target_edges / edges_per_unfold).max(1) as u64;
    RunBuilder::new(spec)
        .policy(ForkFocus::new(cycle, unfoldings, seed))
        .target_edges(target_edges)
        .build()
}

/// Simulate a corpus of `n_runs` structurally distinct runs for store
/// ingestion and batch benchmarks.
///
/// Seeds vary per run *and* target sizes ramp in small strides (from
/// `target_edges` up to roughly `1.5 × target_edges`): small grammars
/// can derive structurally identical runs from different seeds at one
/// target size, and identical structure would (correctly) deduplicate
/// away inside a `RunStore` — the ramp guarantees distinct
/// fingerprints without changing the corpus's size class.
pub fn corpus(
    spec: &Specification,
    n_runs: usize,
    target_edges: usize,
    seed: u64,
) -> Result<Vec<Run>, DeriveError> {
    let stride = (target_edges / (2 * n_runs.max(1))).max(4);
    (0..n_runs)
        .map(|i| simulate(spec, target_edges + i * stride, seed + i as u64))
        .collect()
}

/// Sample `n` node ids deterministically (stride sampling) — benchmark
/// input lists.
pub fn sample_nodes(run: &Run, n: usize, seed: u64) -> Vec<rpq_labeling::NodeId> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut all: Vec<rpq_labeling::NodeId> = run.node_ids().collect();
    all.shuffle(&mut rng);
    all.truncate(n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples::{fig2_spec, fork_spec};

    #[test]
    fn simulate_hits_target() {
        let spec = fig2_spec();
        let run = simulate(&spec, 500, 3).unwrap();
        assert!(run.n_edges() >= 500);
    }

    #[test]
    fn fork_simulation_unfolds_the_cycle() {
        let spec = fork_spec();
        let run = simulate_fork(&spec, 0, 400, 1).unwrap();
        let fork = spec.tag_by_name("fork").unwrap();
        let n_fork = run.edges().iter().filter(|e| e.tag == fork).count();
        assert!(n_fork >= 80, "only {n_fork} fork edges");
    }

    #[test]
    fn corpus_runs_are_structurally_distinct() {
        let spec = fig2_spec();
        let runs = corpus(&spec, 8, 100, 5).unwrap();
        assert_eq!(runs.len(), 8);
        let mut fingerprints: Vec<_> = runs.iter().map(|r| r.fingerprint()).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), 8, "corpus runs must not collide");
        assert_eq!(corpus(&spec, 0, 100, 5).unwrap().len(), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let spec = fig2_spec();
        let run = simulate(&spec, 300, 3).unwrap();
        let a = sample_nodes(&run, 50, 9);
        let b = sample_nodes(&run, 50, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let all = sample_nodes(&run, 10_000_000, 9);
        assert_eq!(all.len(), run.n_nodes());
    }
}
