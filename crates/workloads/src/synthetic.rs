//! Random workflow-specification generator.
//!
//! Used for the overhead experiments ("synthetic workflows of size
//! varying from 400 to 1200", Fig. 13a) and for property-based testing.
//! Generated specifications are always valid and strictly
//! linear-recursive by construction:
//!
//! * composites are ranked; except for cycle edges, production bodies
//!   reference only higher-indexed (lower-ranked) composites, so the
//!   non-cycle production graph is a DAG and every module is productive;
//! * recursion comes as **self-cycles** and **two-module cycles**
//!   (`A → B → A`, with `B` owning only the cycle production — the shape
//!   needed to reproduce QBLast's production statistics); cycles never
//!   share modules, so strict linearity holds by construction;
//! * each composite's first production embeds the next composite outside
//!   its own cycle, so every run visits every composite — run growth via
//!   recursion is always reachable;
//! * bodies are random single-source/single-sink DAGs; the probability
//!   of extra forward edges steers "deep" (chain) versus "branchy"
//!   (diamond) shapes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_grammar::{Specification, SpecificationBuilder};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Number of atomic modules.
    pub n_atomic: usize,
    /// Number of composite modules (≥ 1; the first is the start).
    pub n_composite: usize,
    /// Number of self-recursive composites.
    pub n_self_cycles: usize,
    /// Number of `A → B → A` cycles (each consumes two composites; `B`
    /// has no exit production).
    pub n_two_cycles: usize,
    /// Body size range (nodes per production body), inclusive.
    pub body_nodes: (usize, usize),
    /// Probability scale of extra forward edges beyond the spanning
    /// structure — higher = "branchy" (QBLast-like), lower = "deep"
    /// (BioAID-like).
    pub extra_edge_prob: f64,
    /// Probability that a non-chain body position references a composite
    /// instead of an atomic module (keep small: it multiplies minimal
    /// run sizes).
    pub composite_ref_prob: f64,
    /// Number of distinct base edge tags to draw from.
    pub n_tags: usize,
    /// Extra (non-recursive) alternative productions per composite,
    /// expressed per mille (0–1000).
    pub alt_production_per_mille: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> SynthParams {
        SynthParams {
            n_atomic: 12,
            n_composite: 6,
            n_self_cycles: 2,
            n_two_cycles: 0,
            body_nodes: (3, 7),
            extra_edge_prob: 0.25,
            composite_ref_prob: 0.05,
            n_tags: 10,
            alt_production_per_mille: 300,
            seed: 0,
        }
    }
}

/// A generated specification plus bookkeeping the benches use.
#[derive(Debug)]
pub struct SynthesizedSpec {
    /// The specification.
    pub spec: Specification,
    /// Tags on the cycle-chain edges, one per cycle, in cycle order —
    /// natural Kleene-star query targets.
    pub cycle_tags: Vec<String>,
    /// The base tag pool used outside recursion bodies. IFQs drawn from
    /// these tags are safe by construction (cycle bodies use local tags
    /// and every source→sink path crosses the recursive position).
    pub pool_tags: Vec<String>,
}

/// Which recursion role a composite plays.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Plain,
    SelfCycle,
    /// First member of a two-cycle (has exit + cycle productions).
    PairA,
    /// Second member (only the cycle production).
    PairB,
}

/// Generate a specification from parameters.
pub fn generate(params: &SynthParams) -> SynthesizedSpec {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let nc = params.n_composite;
    let recursion_block = params.n_self_cycles + 2 * params.n_two_cycles;
    assert!(nc >= 1, "need at least a start module");
    assert!(
        recursion_block < nc,
        "the start module must stay non-recursive"
    );
    assert!(params.body_nodes.0 >= 1 && params.body_nodes.0 <= params.body_nodes.1);

    // Layout: plain composites first, then self-cycles, then pairs.
    let first_self = nc - recursion_block;
    let first_pair = first_self + params.n_self_cycles;
    let role = |i: usize| -> Role {
        if i < first_self {
            Role::Plain
        } else if i < first_pair {
            Role::SelfCycle
        } else if (i - first_pair).is_multiple_of(2) {
            Role::PairA
        } else {
            Role::PairB
        }
    };
    // Cycle partner (for the recursive production's target).
    let partner = |i: usize| -> usize {
        match role(i) {
            Role::SelfCycle => i,
            Role::PairA => i + 1,
            Role::PairB => i - 1,
            Role::Plain => unreachable!("plain modules have no partner"),
        }
    };
    let same_cycle = |i: usize, j: usize| -> bool {
        match role(i) {
            Role::Plain => false,
            Role::SelfCycle => i == j,
            Role::PairA | Role::PairB => j == i || j == partner(i),
        }
    };

    let mut b = SpecificationBuilder::new();
    let atomics: Vec<String> = (0..params.n_atomic).map(|i| format!("at{i}")).collect();
    for a in &atomics {
        b.atomic(a);
    }
    let composites: Vec<String> = (0..nc).map(|i| format!("C{i}")).collect();
    for c in &composites {
        b.composite(c);
    }

    let tag_pool: Vec<String> = (0..params.n_tags).map(|i| format!("t{i}")).collect();
    let mut cycle_tags = Vec::new();

    for ci in 0..nc {
        let r = role(ci);
        // Composites this module's bodies may reference (besides its
        // cycle partner at the recursive position): strictly later, not
        // in the same cycle.
        let comp_pool: Vec<&str> = (ci + 1..nc)
            .filter(|&j| !same_cycle(ci, j))
            .map(|j| composites[j].as_str())
            .collect();
        // The chain link guaranteeing reachability of later composites.
        let must_include = comp_pool.first().copied();

        // Cycle-production bodies draw from a cycle-local tag pool: on
        // the paper's real datasets most queries are *safe*, and tags
        // confined to recursion bodies are exactly what keeps λ matrices
        // consistent across exit/continue executions for wildcard-
        // separated queries (see DESIGN.md).
        let local_pool: Vec<String> = (0..3).map(|k| format!("cyc{ci}_{k}")).collect();
        let gen_body = |rng: &mut SmallRng,
                        b: &mut SpecificationBuilder,
                        include: Option<&str>,
                        rec: Option<(&str, &str)>| {
            let min = params
                .body_nodes
                .0
                .max(1 + usize::from(include.is_some()) + usize::from(rec.is_some()) * 2);
            let len = rng.gen_range(min..=params.body_nodes.1.max(min));
            let pool = if rec.is_some() {
                &local_pool
            } else {
                &tag_pool
            };
            emit_production(
                b,
                &composites[ci],
                len,
                &atomics,
                &comp_pool,
                include,
                rec,
                pool,
                params.extra_edge_prob,
                params.composite_ref_prob,
                rng,
            );
        };

        match r {
            Role::Plain | Role::SelfCycle | Role::PairA => {
                // First (exit) production carries the reachability chain.
                gen_body(&mut rng, &mut b, must_include, None);
                if r != Role::Plain {
                    let chain_tag = format!("rec{ci}");
                    cycle_tags.push(chain_tag.clone());
                    let partner_name = composites[partner(ci)].clone();
                    gen_body(&mut rng, &mut b, None, Some((&partner_name, &chain_tag)));
                }
                if r == Role::Plain && rng.gen_range(0..1000) < params.alt_production_per_mille {
                    gen_body(&mut rng, &mut b, must_include, None);
                }
            }
            Role::PairB => {
                // Only the cycle production; the chain tag was assigned
                // by PairA (one tag per cycle), so reuse a local tag.
                let back_tag = format!("rec{ci}b");
                let partner_name = composites[partner(ci)].clone();
                gen_body(&mut rng, &mut b, None, Some((&partner_name, &back_tag)));
            }
        }
    }
    b.start(&composites[0]);
    let spec = b.build().expect("synthetic specification is valid");
    debug_assert!(spec.is_strictly_linear());
    // Only pool tags actually interned (used on some edge) qualify.
    let pool_tags = tag_pool
        .into_iter()
        .filter(|t| spec.tag_by_name(t).is_some())
        .collect();
    SynthesizedSpec {
        spec,
        cycle_tags,
        pool_tags,
    }
}

/// Emit one production with a random single-source/single-sink DAG body.
#[allow(clippy::too_many_arguments)]
fn emit_production(
    b: &mut SpecificationBuilder,
    head: &str,
    body_len: usize,
    atomics: &[String],
    comp_pool: &[&str],
    must_include: Option<&str>,
    recursive: Option<(&str, &str)>,
    tag_pool: &[String],
    extra_edge_prob: f64,
    composite_ref_prob: f64,
    rng: &mut SmallRng,
) {
    let n = body_len;
    // Module per position: atomics by default, composites occasionally.
    let mut names: Vec<String> = (0..n)
        .map(|_| {
            if !comp_pool.is_empty() && rng.gen_bool(composite_ref_prob) {
                comp_pool[rng.gen_range(0..comp_pool.len())].to_owned()
            } else {
                atomics[rng.gen_range(0..atomics.len())].clone()
            }
        })
        .collect();
    // Place the recursive partner in the middle and the chain link just
    // after the source (distinct positions; n is large enough).
    let rec_pos = recursive.map(|(partner, _)| {
        let p = n / 2;
        names[p] = partner.to_owned();
        p
    });
    if let Some(link) = must_include {
        let mut p = 1.min(n - 1);
        if Some(p) == rec_pos {
            p = (p + 1).min(n - 1);
        }
        names[p] = link.to_owned();
    }

    let tag = |rng: &mut SmallRng| tag_pool[rng.gen_range(0..tag_pool.len())].clone();

    b.production(head, |w| {
        let handles: Vec<usize> = names.iter().map(|m| w.node(m)).collect();
        let mut outdeg = vec![0usize; n];
        match (rec_pos, recursive) {
            (Some(p), Some((_, chain))) => {
                // Recursive bodies are chains through the recursive
                // position: every source→sink path crosses it, which is
                // what keeps the λ fixpoint of wildcard-separated
                // queries consistent (no bypass paths; see DESIGN.md).
                for i in 1..n {
                    w.edge_named(handles[i - 1], handles[i], &tag(rng));
                    outdeg[i - 1] += 1;
                }
                // The cycle-chain edge runs source → recursive position,
                // so consecutive unfoldings chain their chain-tag edges
                // (the `a*` workload of Fig. 13g/13h).
                w.edge_named(handles[0], handles[p], chain);
                outdeg[0] += 1;
                // Extra branching edges stay within one side of the
                // recursive position.
                for i in 0..n {
                    for k in (i + 1)..n {
                        let crosses = i < p && k > p;
                        let is_chain_dup = i == 0 && k == p;
                        if !crosses
                            && !is_chain_dup
                            && rng.gen_bool((extra_edge_prob / (1.0 + (k - i) as f64)).min(1.0))
                        {
                            let t = format!("{}x", tag(rng));
                            w.edge_named(handles[i], handles[k], &t);
                            outdeg[i] += 1;
                        }
                    }
                }
            }
            _ => {
                // Spanning in-edges: every node i ≥ 1 from some j < i.
                for i in 1..n {
                    let j = rng.gen_range(0..i);
                    w.edge_named(handles[j], handles[i], &tag(rng));
                    outdeg[j] += 1;
                }
                // Unique sink: every node but the last needs out-degree.
                // The `y` suffix keeps these tags disjoint from spanning
                // tags so parallel edges never carry equal tags.
                for i in 0..n.saturating_sub(1) {
                    if outdeg[i] == 0 {
                        let k = rng.gen_range(i + 1..n);
                        let t = format!("{}y", tag(rng));
                        w.edge_named(handles[i], handles[k], &t);
                        outdeg[i] += 1;
                    }
                }
                // Extra branching edges, tag-suffixed `x` likewise.
                for i in 0..n {
                    for k in (i + 1)..n {
                        if rng.gen_bool((extra_edge_prob / (1.0 + (k - i) as f64)).min(1.0)) {
                            let t = format!("{}x", tag(rng));
                            w.edge_named(handles[i], handles[k], &t);
                            outdeg[i] += 1;
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_labeling::MinSizes;

    #[test]
    fn generated_specs_are_valid_and_linear() {
        for seed in 0..40u64 {
            let params = SynthParams {
                seed,
                ..SynthParams::default()
            };
            let s = generate(&params);
            assert!(s.spec.is_strictly_linear(), "seed {seed}");
            assert_eq!(
                s.spec.recursion().cycles.len(),
                params.n_self_cycles,
                "seed {seed}"
            );
            assert_eq!(s.cycle_tags.len(), params.n_self_cycles);
        }
    }

    #[test]
    fn two_cycles_are_generated_correctly() {
        for seed in 0..20u64 {
            let params = SynthParams {
                n_composite: 8,
                n_self_cycles: 1,
                n_two_cycles: 2,
                alt_production_per_mille: 0,
                seed,
                ..SynthParams::default()
            };
            let s = generate(&params);
            assert!(s.spec.is_strictly_linear(), "seed {seed}");
            let rec = s.spec.recursion();
            assert_eq!(rec.cycles.len(), 3, "seed {seed}");
            let lens: Vec<usize> = rec.cycles.iter().map(|c| c.len()).collect();
            assert_eq!(lens.iter().filter(|&&l| l == 1).count(), 1);
            assert_eq!(lens.iter().filter(|&&l| l == 2).count(), 2);
            // Productions: 3 plain + 1 self (2) + 2 pairs (3 each) = 11.
            assert_eq!(s.spec.productions().len(), 11);
            assert_eq!(s.spec.n_recursive_productions(), 5);
        }
    }

    #[test]
    fn generated_specs_derive_runs() {
        for seed in 0..10u64 {
            let s = generate(&SynthParams {
                seed,
                ..SynthParams::default()
            });
            let run = rpq_labeling::RunBuilder::new(&s.spec)
                .seed(seed)
                .target_edges(300)
                .build()
                .unwrap();
            assert!(run.is_acyclic());
            assert!(run.n_edges() >= 300, "seed {seed}: {}", run.n_edges());
        }
    }

    #[test]
    fn minimal_runs_stay_small() {
        // The reachability chain must not blow up minimal completions.
        let s = generate(&SynthParams {
            n_composite: 16,
            n_atomic: 96,
            n_self_cycles: 7,
            body_nodes: (4, 8),
            composite_ref_prob: 0.05,
            seed: 3,
            ..SynthParams::default()
        });
        let ms = MinSizes::compute(&s.spec);
        assert!(
            ms.min_edges[s.spec.start().index()] < 2_000,
            "minimal run too large: {}",
            ms.min_edges[s.spec.start().index()]
        );
    }

    #[test]
    fn size_scales_with_parameters() {
        let small = generate(&SynthParams {
            n_composite: 4,
            n_atomic: 8,
            seed: 1,
            ..SynthParams::default()
        });
        let large = generate(&SynthParams {
            n_composite: 24,
            n_atomic: 60,
            n_self_cycles: 8,
            seed: 1,
            ..SynthParams::default()
        });
        assert!(large.spec.size() > 2 * small.spec.size());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SynthParams::default());
        let b = generate(&SynthParams::default());
        assert_eq!(a.spec, b.spec);
    }
}
