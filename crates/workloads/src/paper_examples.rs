//! The paper's worked examples, shared across tests, examples and docs.

use rpq_grammar::{ProductionId, Specification, SpecificationBuilder};
use rpq_labeling::{Run, RunBuilder, Scripted};

/// The Fig. 2a workflow specification.
///
/// * `W1 : S → {c, A, B, b}` — a diamond: `c` feeds both `A` and `B`,
///   which both feed the final `b` (the only shape consistent with
///   Examples 3.1 and 3.2).
/// * `W2 : A → {a, A, d}` — the linear recursion.
/// * `W3 : A → {e, e}` — the base case.
/// * `W4 : B → {b, b}`.
///
/// Tags follow the paper's head-name convention except W2's first edge,
/// which carries the tag `a` that the unsafe example `⎵* a ⎵*` relies on.
pub fn fig2_spec() -> Specification {
    let mut b = SpecificationBuilder::new();
    for m in ["a", "b", "c", "d", "e"] {
        b.atomic(m);
    }
    for m in ["S", "A", "B"] {
        b.composite(m);
    }
    b.production("S", |w| {
        let c = w.node("c");
        let a = w.node("A");
        let bb = w.node("B");
        let b2 = w.node("b");
        w.edge(c, a);
        w.edge(c, bb);
        w.edge(a, b2);
        w.edge(bb, b2);
    });
    b.production("A", |w| {
        let a = w.node("a");
        let aa = w.node("A");
        let d = w.node("d");
        w.edge_named(a, aa, "a");
        w.edge(aa, d);
    });
    b.production("A", |w| {
        let e1 = w.node("e");
        let e2 = w.node("e");
        w.edge(e1, e2);
    });
    b.production("B", |w| {
        let b1 = w.node("b");
        let b2 = w.node("b");
        w.edge(b1, b2);
    });
    b.start("S");
    b.build().expect("fig2 is well-formed")
}

/// The Fig. 2b run: `S` fires W1, `A` recurses twice then exits with W3,
/// `B` fires W4. Node names and labels match Fig. 7 exactly.
pub fn fig2_run(spec: &Specification) -> Run {
    RunBuilder::new(spec)
        .policy(Scripted::new([
            ProductionId(0),
            ProductionId(1),
            ProductionId(1),
            ProductionId(2),
            ProductionId(3),
        ]))
        .build()
        .expect("fig2 derivation succeeds")
}

/// A specification whose production graph matches Fig. 5: two cycles
/// sharing the vertex `S` — **not** strictly linear-recursive.
pub fn fig5_spec() -> Specification {
    let mut b = SpecificationBuilder::new();
    for m in ["a", "b", "c"] {
        b.atomic(m);
    }
    b.composite("S");
    b.production("S", |w| {
        let x = w.node("a");
        let s = w.node("S");
        let y = w.node("b");
        w.edge(x, s);
        w.edge(s, y);
    });
    b.production("S", |w| {
        let x = w.node("c");
        let s = w.node("S");
        w.edge(x, s);
    });
    b.production("S", |w| {
        w.node("a");
    });
    b.start("S");
    b.build().expect("fig5 builds (it is merely non-SLR)")
}

/// The Fig. 14 fork pattern: `M` repeatedly forks a composite `A` off a
/// distributor chain. Unfolding the recursion `k` times yields a chain
/// of `k` `fork`-tagged edges — the workload for the Kleene-star
/// experiments (`fork*`).
pub fn fork_spec() -> Specification {
    let mut b = SpecificationBuilder::new();
    for m in ["dist", "agg", "work"] {
        b.atomic(m);
    }
    b.composite("M");
    b.composite("A");
    // M → dist feeding a forked A and the recursive M, joined by agg.
    b.production("M", |w| {
        let d = w.node("dist");
        let a = w.node("A");
        let m = w.node("M");
        let g = w.node("agg");
        w.edge_named(d, a, "branch");
        w.edge_named(d, m, "fork");
        w.edge_named(a, g, "join");
        w.edge_named(m, g, "join");
    });
    // Base case: a single distributor handing to the aggregator.
    b.production("M", |w| {
        let d = w.node("dist");
        let g = w.node("agg");
        w.edge_named(d, g, "last");
    });
    // A does some work.
    b.production("A", |w| {
        let x = w.node("work");
        let y = w.node("work");
        w.edge_named(x, y, "step");
    });
    b.start("M");
    b.build().expect("fork spec is well-formed")
}

/// A strictly linear specification with a **two-module cycle**
/// `A → B → A` — exercises multi-phase recursion decoding.
pub fn two_phase_cycle_spec() -> Specification {
    let mut b = SpecificationBuilder::new();
    for m in ["x", "y", "z"] {
        b.atomic(m);
    }
    for m in ["S", "A", "B"] {
        b.composite(m);
    }
    b.production("S", |w| {
        let x = w.node("x");
        let a = w.node("A");
        let y = w.node("y");
        w.edge_named(x, a, "in");
        w.edge_named(a, y, "out");
    });
    // A → x B y (continues the cycle through B).
    b.production("A", |w| {
        let x = w.node("x");
        let bb = w.node("B");
        let y = w.node("y");
        w.edge_named(x, bb, "ab");
        w.edge_named(bb, y, "exit_a");
    });
    // B → x A z (continues the cycle back to A).
    b.production("B", |w| {
        let x = w.node("x");
        let a = w.node("A");
        let z = w.node("z");
        w.edge_named(x, a, "ba");
        w.edge_named(a, z, "exit_b");
    });
    // Base cases.
    b.production("A", |w| {
        let x = w.node("x");
        let z = w.node("z");
        w.edge_named(x, z, "base_a");
    });
    b.production("B", |w| {
        let y = w.node("y");
        let z = w.node("z");
        w.edge_named(y, z, "base_b");
    });
    b.start("S");
    b.build().expect("two-phase cycle spec is well-formed")
}

/// A strictly linear specification with a **three-module cycle**
/// `A → B → C → A` whose bodies are small diamonds.
pub fn three_phase_cycle_spec() -> Specification {
    let mut b = SpecificationBuilder::new();
    for m in ["p", "q"] {
        b.atomic(m);
    }
    for m in ["S", "A", "B", "C"] {
        b.composite(m);
    }
    b.production("S", |w| {
        let x = w.node("p");
        let a = w.node("A");
        w.edge_named(x, a, "start");
    });
    b.production("A", |w| {
        let x = w.node("p");
        let n = w.node("B");
        let y = w.node("q");
        w.edge_named(x, n, "stepA");
        w.edge_named(n, y, "afterA");
    });
    b.production("B", |w| {
        let x = w.node("p");
        let n = w.node("C");
        let y = w.node("q");
        w.edge_named(x, n, "stepB");
        w.edge_named(n, y, "afterB");
    });
    b.production("C", |w| {
        let x = w.node("p");
        let n = w.node("A");
        let y = w.node("q");
        w.edge_named(x, n, "stepC");
        w.edge_named(n, y, "afterC");
    });
    for m in ["A", "B", "C"] {
        b.production(m, |w| {
            let x = w.node("p");
            let y = w.node("q");
            w.edge_named(x, y, "leaf");
        });
    }
    b.start("S");
    b.build().expect("three-phase cycle spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_statistics() {
        let spec = fig2_spec();
        assert_eq!(spec.n_modules(), 8);
        assert_eq!(spec.n_composite(), 3);
        assert_eq!(spec.productions().len(), 4);
        assert_eq!(spec.size(), 4 + 11); // 4 productions, 11 body nodes
        assert!(spec.is_strictly_linear());
        assert_eq!(spec.recursion().cycles.len(), 1);
    }

    #[test]
    fn fig2_run_matches_paper() {
        let spec = fig2_spec();
        let run = fig2_run(&spec);
        assert_eq!(run.n_nodes(), 10);
        assert_eq!(run.n_edges(), 10);
        assert!(run.is_acyclic());
    }

    #[test]
    fn fig5_is_not_strictly_linear() {
        assert!(!fig5_spec().is_strictly_linear());
    }

    #[test]
    fn fork_spec_unfolds() {
        let spec = fork_spec();
        assert!(spec.is_strictly_linear());
        let run = RunBuilder::new(&spec)
            .policy(rpq_labeling::ForkFocus::new(0, 30, 1))
            .build()
            .unwrap();
        // 30 unfoldings → 30 fork edges forming a chain.
        let fork = spec.tag_by_name("fork").unwrap();
        let n_fork = run.edges().iter().filter(|e| e.tag == fork).count();
        assert_eq!(n_fork, 30);
    }

    #[test]
    fn multi_phase_cycles_are_strictly_linear() {
        let two = two_phase_cycle_spec();
        assert!(two.is_strictly_linear());
        assert_eq!(two.recursion().cycles.len(), 1);
        assert_eq!(two.recursion().cycles[0].len(), 2);

        let three = three_phase_cycle_spec();
        assert!(three.is_strictly_linear());
        assert_eq!(three.recursion().cycles.len(), 1);
        assert_eq!(three.recursion().cycles[0].len(), 3);
    }

    #[test]
    fn multi_phase_runs_derive() {
        for spec in [two_phase_cycle_spec(), three_phase_cycle_spec()] {
            let run = RunBuilder::new(&spec)
                .seed(1)
                .target_edges(200)
                .build()
                .unwrap();
            assert!(run.n_edges() >= 200);
            assert!(run.is_acyclic());
        }
    }
}
