//! DFA minimization (Moore partition refinement).
//!
//! Lemma 3.2 of the paper shows that checking query safety on the
//! *minimal* DFA is both sound and complete, and the minimal DFA also
//! bounds the size of the query-intersected grammar `G_R` (each module of
//! `G_R` carries `|Q|` input and `|Q|` output ports), so minimization is
//! on the critical path of the whole approach.
//!
//! The implementation trims unreachable states and then runs Moore's
//! partition refinement to a fixpoint: states are repeatedly re-grouped
//! by the signature (current class, class of each successor). Moore is
//! `O(n²·|Γ|)` versus Hopcroft's `O(n·|Γ|·log n)`, but query DFAs here
//! are tiny (an IFQ of size k has k+1 states) while correctness is
//! load-bearing — an earlier Hopcroft variant lost pending-splitter
//! obligations and was caught by the referee property tests.

use crate::ast::Symbol;
use crate::dfa::Dfa;
use std::collections::HashMap;

/// Minimize a complete DFA. The result is again complete, with states
/// renumbered so the start state is `0` and the remaining states follow
/// a breadth-first order (deterministic output for equal inputs —
/// equal-language minimal DFAs are structurally identical).
pub fn minimize(dfa: &Dfa) -> Dfa {
    let reachable = reachable_states(dfa);
    let n_symbols = dfa.n_symbols();

    // Compact reachable states.
    let mut compact: Vec<u32> = vec![u32::MAX; dfa.n_states()];
    let mut originals: Vec<u32> = Vec::new();
    for (q, &r) in reachable.iter().enumerate() {
        if r {
            compact[q] = originals.len() as u32;
            originals.push(q as u32);
        }
    }
    let n = originals.len();
    debug_assert!(n > 0, "start state is always reachable");

    // Transition table restricted to reachable states.
    let mut table = vec![0u32; n * n_symbols];
    let mut accepting = vec![false; n];
    for (i, &orig) in originals.iter().enumerate() {
        accepting[i] = dfa.is_accepting(orig);
        for a in 0..n_symbols {
            let to = dfa.next(orig, Symbol(a as u32));
            debug_assert!(reachable[to as usize]);
            table[i * n_symbols + a] = compact[to as usize];
        }
    }

    // Moore refinement to a fixpoint.
    let mut class: Vec<u32> = accepting.iter().map(|&a| u32::from(a)).collect();
    let mut n_classes = if accepting.iter().any(|&a| a) && accepting.iter().any(|&a| !a) {
        2
    } else {
        1
    };
    // Normalize classes so ids are dense from 0 even if all states agree.
    if n_classes == 1 {
        class.fill(0);
    }
    loop {
        let mut sig_index: HashMap<Vec<u32>, u32> = HashMap::with_capacity(n_classes * 2);
        let mut next_class = vec![0u32; n];
        for q in 0..n {
            let mut sig = Vec::with_capacity(n_symbols + 1);
            sig.push(class[q]);
            for a in 0..n_symbols {
                sig.push(class[table[q * n_symbols + a] as usize]);
            }
            let next_id = sig_index.len() as u32;
            next_class[q] = *sig_index.entry(sig).or_insert(next_id);
        }
        let new_count = sig_index.len();
        class = next_class;
        if new_count == n_classes {
            break;
        }
        n_classes = new_count;
    }

    // Rebuild the quotient automaton with BFS numbering from the start.
    let start_compact = compact[dfa.start() as usize] as usize;
    // A representative state per class.
    let mut rep: Vec<usize> = vec![usize::MAX; n_classes];
    for (q, &c) in class.iter().enumerate() {
        if rep[c as usize] == usize::MAX {
            rep[c as usize] = q;
        }
    }

    let mut renumber: Vec<u32> = vec![u32::MAX; n_classes];
    let mut order: Vec<usize> = Vec::with_capacity(n_classes);
    let start_class = class[start_compact] as usize;
    renumber[start_class] = 0;
    order.push(start_class);
    let mut head = 0;
    while head < order.len() {
        let c = order[head];
        head += 1;
        let r = rep[c];
        for a in 0..n_symbols {
            let tc = class[table[r * n_symbols + a] as usize] as usize;
            if renumber[tc] == u32::MAX {
                renumber[tc] = order.len() as u32;
                order.push(tc);
            }
        }
    }
    // Every class contains a reachable state, and the partition is a
    // congruence at the fixpoint, so BFS over representatives visits all
    // classes.
    debug_assert_eq!(order.len(), n_classes);

    let mut out_table = vec![0u32; n_classes * n_symbols];
    let mut out_accepting = vec![false; n_classes];
    for (new_id, &c) in order.iter().enumerate() {
        let r = rep[c];
        out_accepting[new_id] = accepting[r];
        for a in 0..n_symbols {
            let tc = class[table[r * n_symbols + a] as usize] as usize;
            out_table[new_id * n_symbols + a] = renumber[tc];
        }
    }

    Dfa::from_parts(n_symbols, out_table, 0, out_accepting)
}

fn reachable_states(dfa: &Dfa) -> Vec<bool> {
    let mut seen = vec![false; dfa.n_states()];
    let mut stack = vec![dfa.start()];
    seen[dfa.start() as usize] = true;
    while let Some(q) = stack.pop() {
        for a in 0..dfa.n_symbols() {
            let to = dfa.next(q, Symbol(a as u32));
            if !seen[to as usize] {
                seen[to as usize] = true;
                stack.push(to);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Regex, Symbol};
    use crate::nfa::Nfa;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    fn s(i: u32) -> Regex {
        Regex::Sym(sym(i))
    }

    fn min_of(re: &Regex, n: usize) -> Dfa {
        minimize(&Dfa::from_nfa(&Nfa::from_regex(re, n)))
    }

    fn all_words(n_syms: u32, max_len: usize) -> Vec<Vec<Symbol>> {
        let mut words: Vec<Vec<Symbol>> = vec![vec![]];
        let mut frontier = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for a in 0..n_syms {
                    let mut w2: Vec<Symbol> = w.clone();
                    w2.push(sym(a));
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        words
    }

    #[test]
    fn minimization_preserves_language() {
        let res = [
            Regex::ifq(&[sym(0), sym(1)]),
            Regex::star(Regex::alt(vec![s(0), Regex::concat(vec![s(1), s(2)])])),
            Regex::alt(vec![
                Regex::concat(vec![s(0), Regex::star(s(1))]),
                Regex::concat(vec![s(0), Regex::star(s(2))]),
            ]),
            Regex::Empty,
            Regex::Epsilon,
            Regex::concat(vec![
                Regex::alt(vec![s(0), s(1)]),
                Regex::plus(Regex::alt(vec![s(1), s(2)])),
                Regex::optional(s(0)),
            ]),
        ];
        for re in &res {
            let dfa = Dfa::from_nfa(&Nfa::from_regex(re, 3));
            let min = minimize(&dfa);
            assert!(min.n_states() <= dfa.n_states());
            for w in all_words(3, 5) {
                assert_eq!(min.accepts(&w), dfa.accepts(&w), "{re:?} on {w:?}");
            }
        }
    }

    #[test]
    fn minimal_sizes_match_theory() {
        // ⎵* e ⎵* (paper's R3): 2 states.
        let r3 = Regex::ifq(&[sym(0)]);
        assert_eq!(min_of(&r3, 2).n_states(), 2);

        // Single symbol `e` over {e, x}: start, accept, dead = 3 states.
        assert_eq!(min_of(&s(0), 2).n_states(), 3);

        // ⎵* : 1 state.
        assert_eq!(min_of(&Regex::any_star(), 4).n_states(), 1);

        // ∅: 1 state.
        assert_eq!(min_of(&Regex::Empty, 2).n_states(), 1);

        // IFQ with k symbols: k+1 states (no dead state needed thanks to
        // the trailing ⎵*).
        for k in 0..6u32 {
            let syms: Vec<Symbol> = (0..k).map(|_| sym(0)).collect();
            let re = Regex::ifq(&syms);
            assert_eq!(min_of(&re, 2).n_states(), (k + 1) as usize, "k = {k}");
        }
    }

    #[test]
    fn idempotent() {
        let re = Regex::star(Regex::alt(vec![s(0), Regex::concat(vec![s(1), s(0)])]));
        let once = min_of(&re, 2);
        let twice = minimize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn minimization_is_canonical_for_equivalent_regexes() {
        // (a|b)* and (a* b*)* denote the same language.
        let lhs = min_of(&Regex::star(Regex::alt(vec![s(0), s(1)])), 2);
        let rhs = min_of(
            &Regex::star(Regex::concat(vec![Regex::star(s(0)), Regex::star(s(1))])),
            2,
        );
        // BFS renumbering makes equal-language minimal DFAs structurally
        // identical.
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn start_state_is_zero() {
        let m = min_of(&Regex::ifq(&[sym(1)]), 3);
        assert_eq!(m.start(), 0);
    }

    #[test]
    fn randomized_minimization_agrees_with_equivalence() {
        // Random regexes: minimized DFA must be language-equivalent to
        // the unminimized one (checked via product-complement emptiness)
        // and no larger.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        fn random_regex(rng: &mut SmallRng, depth: usize) -> Regex {
            if depth == 0 {
                return match rng.gen_range(0..6) {
                    0 => Regex::Wildcard,
                    1 => Regex::Epsilon,
                    _ => Regex::Sym(Symbol(rng.gen_range(0..3))),
                };
            }
            match rng.gen_range(0..8) {
                0..=2 => Regex::concat(vec![
                    random_regex(rng, depth - 1),
                    random_regex(rng, depth - 1),
                ]),
                3..=5 => Regex::alt(vec![
                    random_regex(rng, depth - 1),
                    random_regex(rng, depth - 1),
                ]),
                6 => Regex::star(random_regex(rng, depth - 1)),
                _ => Regex::plus(random_regex(rng, depth - 1)),
            }
        }
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let re = random_regex(&mut rng, 3);
            let dfa = Dfa::from_nfa(&Nfa::from_regex(&re, 3));
            let min = minimize(&dfa);
            assert!(min.n_states() <= dfa.n_states());
            assert!(min.equivalent(&dfa), "not equivalent for {re:?}");
            // Idempotence on arbitrary inputs.
            assert_eq!(minimize(&min), min);
        }
    }
}
