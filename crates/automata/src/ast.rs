//! Regex abstract syntax over an interned symbol alphabet.
//!
//! Queries in the paper are regular expressions over edge tags `Γ`,
//! built from constants (a tag, the empty string `ε`, or the single-symbol
//! wildcard `⎵`), concatenation, alternation and Kleene star/plus
//! (Section III-A). The AST mirrors that definition exactly, with two
//! additions that make algebraic manipulation convenient: an explicit
//! empty *language* (`Empty`, denoting ∅) and `Optional` (`e?`, sugar for
//! `e | ε`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An interned alphabet symbol (an edge tag).
///
/// The grammar crate maps tag names to dense `u32` ids; the automaton
/// layer never sees the names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol's dense index, usable directly as a table column.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A regular path query over edge tags.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regex {
    /// The empty language ∅ (matches nothing). Not part of the paper's
    /// surface syntax but useful as an algebraic zero.
    Empty,
    /// The empty string ε.
    Epsilon,
    /// A single concrete symbol.
    Sym(Symbol),
    /// The single-symbol wildcard `⎵` — matches any one symbol.
    Wildcard,
    /// Concatenation `e1 e2 … en` (n ≥ 2 after normalization).
    Concat(Vec<Regex>),
    /// Alternation `e1 | e2 | … | en` (n ≥ 2 after normalization).
    Alt(Vec<Regex>),
    /// Kleene star `e*` (zero or more).
    Star(Box<Regex>),
    /// Kleene plus `e+` (one or more).
    Plus(Box<Regex>),
    /// Option `e?` (zero or one).
    Optional(Box<Regex>),
}

impl Regex {
    /// Smart constructor for concatenation: drops ε units, propagates ∅,
    /// and flattens nested concatenations.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Smart constructor for alternation: drops ∅ branches and flattens.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Smart constructor for star: `∅* = ε* = ε`, `(e*)* = e*`.
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(e) | Regex::Optional(e) => Regex::Star(e),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// Smart constructor for plus: `∅+ = ∅`, `ε+ = ε`, `(e*)+ = e*`.
    pub fn plus(inner: Regex) -> Regex {
        match inner {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Optional(e) => Regex::Star(e),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Smart constructor for option.
    pub fn optional(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ (Regex::Star(_) | Regex::Optional(_)) => s,
            Regex::Plus(e) => Regex::Star(e),
            other => Regex::Optional(Box::new(other)),
        }
    }

    /// Single symbol.
    pub fn sym(s: Symbol) -> Regex {
        Regex::Sym(s)
    }

    /// `⎵*` — the unconstrained reachability query (`R = ( )∗` in the
    /// paper, safe w.r.t. every workflow).
    pub fn any_star() -> Regex {
        Regex::Star(Box::new(Regex::Wildcard))
    }

    /// Build an *infrequent-form query* (IFQ, Section V-A):
    /// `⎵* a1 ⎵* a2 … ⎵* ak ⎵*`. With `k = 0` this degrades to plain
    /// reachability, exactly as the paper notes for Fig. 13d.
    pub fn ifq(symbols: &[Symbol]) -> Regex {
        let mut parts = vec![Regex::any_star()];
        for &s in symbols {
            parts.push(Regex::Sym(s));
            parts.push(Regex::any_star());
        }
        Regex::concat(parts)
    }

    /// Does ε belong to the language? (Syntactic check — exact, since the
    /// AST has no complement.)
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) | Regex::Wildcard => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Optional(_) => true,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Plus(inner) => inner.nullable(),
        }
    }

    /// Number of AST nodes; the paper's `|R|` when discussing complexity.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) | Regex::Wildcard => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => 1 + inner.size(),
        }
    }

    /// All concrete symbols mentioned anywhere in the expression.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Symbol>) {
        match self {
            Regex::Sym(s) => out.push(*s),
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => {
                inner.collect_symbols(out)
            }
            Regex::Empty | Regex::Epsilon | Regex::Wildcard => {}
        }
    }

    /// Render with a caller-supplied symbol namer (inverse of interning).
    pub fn display_with<'a>(
        &'a self,
        namer: &'a dyn Fn(Symbol) -> String,
    ) -> impl fmt::Display + 'a {
        DisplayRegex { re: self, namer }
    }
}

struct DisplayRegex<'a> {
    re: &'a Regex,
    namer: &'a dyn Fn(Symbol) -> String,
}

impl fmt::Display for DisplayRegex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_regex(self.re, self.namer, f, 0)
    }
}

/// Precedence levels: 0 = alternation, 1 = concatenation, 2 = postfix.
fn fmt_regex(
    re: &Regex,
    namer: &dyn Fn(Symbol) -> String,
    f: &mut fmt::Formatter<'_>,
    prec: u8,
) -> fmt::Result {
    match re {
        Regex::Empty => write!(f, "∅"),
        Regex::Epsilon => write!(f, "~"),
        Regex::Sym(s) => write!(f, "{}", namer(*s)),
        Regex::Wildcard => write!(f, "_"),
        Regex::Concat(parts) => {
            let need_parens = prec > 1;
            if need_parens {
                write!(f, "(")?;
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                fmt_regex(p, namer, f, 2)?;
            }
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Alt(parts) => {
            let need_parens = prec > 0;
            if need_parens {
                write!(f, "(")?;
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, "|")?;
                }
                fmt_regex(p, namer, f, 1)?;
            }
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Star(inner) => {
            fmt_regex(inner, namer, f, 2)?;
            write!(f, "*")
        }
        Regex::Plus(inner) => {
            fmt_regex(inner, namer, f, 2)?;
            write!(f, "+")
        }
        Regex::Optional(inner) => {
            fmt_regex(inner, namer, f, 2)?;
            write!(f, "?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(Symbol(i))
    }

    #[test]
    fn concat_smart_constructor_flattens_and_drops_epsilon() {
        let r = Regex::concat(vec![
            Regex::Epsilon,
            s(0),
            Regex::Concat(vec![s(1), s(2)]),
            Regex::Epsilon,
        ]);
        assert_eq!(r, Regex::Concat(vec![s(0), s(1), s(2)]));
    }

    #[test]
    fn concat_propagates_empty() {
        assert_eq!(Regex::concat(vec![s(0), Regex::Empty, s(1)]), Regex::Empty);
    }

    #[test]
    fn concat_of_nothing_is_epsilon() {
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(Regex::concat(vec![Regex::Epsilon]), Regex::Epsilon);
    }

    #[test]
    fn alt_drops_empty_branches() {
        assert_eq!(Regex::alt(vec![Regex::Empty, s(3)]), s(3));
        assert_eq!(Regex::alt(vec![Regex::Empty, Regex::Empty]), Regex::Empty);
    }

    #[test]
    fn star_simplifications() {
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::star(s(0))), Regex::star(s(0)));
        assert_eq!(Regex::star(Regex::plus(s(0))), Regex::star(s(0)));
    }

    #[test]
    fn plus_simplifications() {
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::plus(Regex::Epsilon), Regex::Epsilon);
        assert_eq!(Regex::plus(Regex::optional(s(0))), Regex::star(s(0)));
    }

    #[test]
    fn nullable_matches_semantics() {
        assert!(Regex::Epsilon.nullable());
        assert!(Regex::any_star().nullable());
        assert!(!s(0).nullable());
        assert!(Regex::concat(vec![Regex::star(s(0)), Regex::star(s(1))]).nullable());
        assert!(!Regex::concat(vec![Regex::star(s(0)), s(1)]).nullable());
        assert!(Regex::alt(vec![s(0), Regex::Epsilon]).nullable());
        assert!(!Regex::Plus(Box::new(s(0))).nullable());
    }

    #[test]
    fn ifq_zero_is_reachability() {
        assert_eq!(Regex::ifq(&[]), Regex::any_star());
    }

    #[test]
    fn ifq_shape() {
        let r = Regex::ifq(&[Symbol(4), Symbol(7)]);
        assert_eq!(
            r,
            Regex::Concat(vec![
                Regex::any_star(),
                s(4),
                Regex::any_star(),
                s(7),
                Regex::any_star(),
            ])
        );
    }

    #[test]
    fn symbols_are_sorted_and_deduped() {
        let r = Regex::concat(vec![s(5), Regex::alt(vec![s(2), s(5)]), Regex::star(s(1))]);
        assert_eq!(r.symbols(), vec![Symbol(1), Symbol(2), Symbol(5)]);
    }

    #[test]
    fn size_counts_nodes() {
        let r = Regex::concat(vec![s(0), Regex::star(s(1))]);
        // Concat + Sym + Star + Sym
        assert_eq!(r.size(), 4);
    }

    #[test]
    fn display_round_trips_visually() {
        let namer = |sym: Symbol| format!("t{}", sym.0);
        let r = Regex::concat(vec![
            Regex::any_star(),
            Regex::alt(vec![s(1), s(2)]),
            Regex::plus(s(3)),
        ]);
        assert_eq!(r.display_with(&namer).to_string(), "_* (t1|t2) t3+");
    }
}
