//! Language analyses used by the planner and the baselines.
//!
//! * [`required_symbols`] feeds baseline **G2** (Koschmieder & Leser,
//!   SSDBM 2012): a symbol that occurs in *every* accepted word is a
//!   candidate "rare label" at which the query can be split.
//! * [`is_empty`] / [`contains_epsilon`] are used throughout query
//!   planning (e.g. to decide whether `u —R→ u` holds on a DAG run).
//! * [`enumerate_words`] is a test oracle.

use crate::ast::Symbol;
use crate::dfa::Dfa;

/// Is `L(dfa)` empty?
pub fn is_empty(dfa: &Dfa) -> bool {
    dfa.is_empty()
}

/// Is ε ∈ `L(dfa)`?
pub fn contains_epsilon(dfa: &Dfa) -> bool {
    dfa.accepts_epsilon()
}

/// Symbols that occur in **every** non-empty accepted word.
///
/// Computed per symbol `a` by testing whether the language restricted to
/// transitions avoiding `a` still reaches an accepting state — i.e.
/// whether `L(R) ∩ (Γ∖{a})* = ∅` (then `a` is required). ε-acceptance is
/// ignored: a query that accepts ε has no useful splitting symbol anyway,
/// and G2 falls back to plain product search.
pub fn required_symbols(dfa: &Dfa) -> Vec<Symbol> {
    let mut out = Vec::new();
    for a in 0..dfa.n_symbols() {
        if symbol_is_required(dfa, Symbol(a as u32)) {
            out.push(Symbol(a as u32));
        }
    }
    out
}

fn symbol_is_required(dfa: &Dfa, avoid: Symbol) -> bool {
    // Forward reachability from the start using only symbols != avoid.
    let mut seen = vec![false; dfa.n_states()];
    let mut stack = vec![dfa.start()];
    seen[dfa.start() as usize] = true;
    while let Some(q) = stack.pop() {
        // A non-ε word must exist: we accept "required" only if no word
        // (including ε) avoiding `avoid` is accepted. ε acceptance means
        // the start state is accepting.
        if dfa.is_accepting(q) && q != dfa.start() {
            return false;
        }
        for s in 0..dfa.n_symbols() {
            if s == avoid.index() {
                continue;
            }
            let to = dfa.next(q, Symbol(s as u32));
            if !seen[to as usize] {
                seen[to as usize] = true;
                stack.push(to);
            }
        }
    }
    // Start state accepting = ε accepted without the symbol; then the
    // symbol is not required for *all* accepted words.
    !dfa.accepts_epsilon()
}

/// Enumerate all accepted words of length ≤ `max_len` (test oracle;
/// exponential, use only with tiny alphabets).
pub fn enumerate_words(dfa: &Dfa, max_len: usize) -> Vec<Vec<Symbol>> {
    let mut out = Vec::new();
    let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
    if dfa.accepts_epsilon() {
        out.push(vec![]);
    }
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for a in 0..dfa.n_symbols() {
                let mut w2 = w.clone();
                w2.push(Symbol(a as u32));
                if dfa.accepts(&w2) {
                    out.push(w2.clone());
                }
                next.push(w2);
            }
        }
        frontier = next;
    }
    out
}

/// Length of the shortest accepted word, if any (BFS over states).
pub fn shortest_word_len(dfa: &Dfa) -> Option<usize> {
    let mut dist = vec![usize::MAX; dfa.n_states()];
    let mut queue = std::collections::VecDeque::new();
    dist[dfa.start() as usize] = 0;
    queue.push_back(dfa.start());
    while let Some(q) = queue.pop_front() {
        if dfa.is_accepting(q) {
            return Some(dist[q as usize]);
        }
        for a in 0..dfa.n_symbols() {
            let to = dfa.next(q, Symbol(a as u32));
            if dist[to as usize] == usize::MAX {
                dist[to as usize] = dist[q as usize] + 1;
                queue.push_back(to);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Regex;
    use crate::compile_minimal_dfa;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    fn s(i: u32) -> Regex {
        Regex::Sym(sym(i))
    }

    #[test]
    fn required_symbols_of_ifq() {
        // ⎵* t0 ⎵* t1 ⎵* requires t0 and t1.
        let dfa = compile_minimal_dfa(&Regex::ifq(&[sym(0), sym(1)]), 4);
        assert_eq!(required_symbols(&dfa), vec![sym(0), sym(1)]);
    }

    #[test]
    fn alternation_kills_requirement() {
        // (t0|t1) t2 requires t2 only.
        let re = Regex::concat(vec![Regex::alt(vec![s(0), s(1)]), s(2)]);
        let dfa = compile_minimal_dfa(&re, 3);
        assert_eq!(required_symbols(&dfa), vec![sym(2)]);
    }

    #[test]
    fn star_is_never_required() {
        let dfa = compile_minimal_dfa(&Regex::star(s(0)), 2);
        assert!(required_symbols(&dfa).is_empty());
    }

    #[test]
    fn plus_is_required() {
        let dfa = compile_minimal_dfa(&Regex::plus(s(0)), 2);
        assert_eq!(required_symbols(&dfa), vec![sym(0)]);
    }

    #[test]
    fn empty_language_trivially_requires_everything() {
        let dfa = compile_minimal_dfa(&Regex::Empty, 2);
        assert_eq!(required_symbols(&dfa), vec![sym(0), sym(1)]);
    }

    #[test]
    fn enumerate_words_oracle() {
        let dfa = compile_minimal_dfa(&Regex::alt(vec![Regex::Epsilon, s(1)]), 2);
        let words = enumerate_words(&dfa, 2);
        assert_eq!(words, vec![vec![], vec![sym(1)]]);
    }

    #[test]
    fn shortest_word() {
        assert_eq!(
            shortest_word_len(&compile_minimal_dfa(&Regex::ifq(&[sym(0), sym(1)]), 2)),
            Some(2)
        );
        assert_eq!(
            shortest_word_len(&compile_minimal_dfa(&Regex::Empty, 2)),
            None
        );
        assert_eq!(
            shortest_word_len(&compile_minimal_dfa(&Regex::any_star(), 2)),
            Some(0)
        );
    }
}
