//! Complete deterministic finite automata.
//!
//! The safety definitions of the paper (Definition 11–12) are phrased over
//! a *total* transition function `δ : Q × Γ → Q`, so our DFAs are always
//! complete: subset construction introduces an explicit dead state when
//! needed, and minimization keeps the automaton total. A complete DFA also
//! makes the query-intersected grammar construction (Section III-B)
//! uniform — every edge tag transitions every port.

use crate::ast::Symbol;
use crate::nfa::{Label, Nfa};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense DFA state id.
pub type StateId = u32;

/// Sentinel meaning "this DFA needed no dead state".
pub const DEAD_STATE_NONE: u32 = u32::MAX;

/// A complete DFA over a dense symbol alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dfa {
    n_states: u32,
    n_symbols: u32,
    /// Row-major transition table: `table[state * n_symbols + symbol]`.
    table: Vec<StateId>,
    start: StateId,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Build a complete DFA from raw parts.
    ///
    /// # Panics
    /// Panics if the table shape is inconsistent or a transition target is
    /// out of range.
    pub fn from_parts(
        n_symbols: usize,
        table: Vec<StateId>,
        start: StateId,
        accepting: Vec<bool>,
    ) -> Dfa {
        let n_states = accepting.len();
        assert!(n_states > 0, "DFA must have at least one state");
        assert_eq!(table.len(), n_states * n_symbols, "table shape mismatch");
        assert!((start as usize) < n_states, "start out of range");
        assert!(
            table.iter().all(|&t| (t as usize) < n_states),
            "transition target out of range"
        );
        Dfa {
            n_states: n_states as u32,
            n_symbols: n_symbols as u32,
            table,
            start,
            accepting,
        }
    }

    /// Subset construction from an NFA; the result is complete.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let n_symbols = nfa.n_symbols();
        let mut table: Vec<StateId> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut index: HashMap<Vec<u32>, StateId> = HashMap::new();
        let mut worklist: Vec<Vec<u32>> = Vec::new();

        let mut intern = |set: Vec<u32>,
                          table: &mut Vec<StateId>,
                          accepting: &mut Vec<bool>,
                          worklist: &mut Vec<Vec<u32>>|
         -> StateId {
            if let Some(&id) = index.get(&set) {
                return id;
            }
            let id = accepting.len() as StateId;
            accepting.push(set.binary_search(&nfa.accept()).is_ok());
            table.extend(std::iter::repeat_n(0, n_symbols));
            index.insert(set.clone(), id);
            worklist.push(set);
            id
        };

        let start_set = nfa.eps_closure(&[nfa.start()]);
        let start = intern(start_set, &mut table, &mut accepting, &mut worklist);
        debug_assert_eq!(start, 0);

        // The empty set (dead state) is interned lazily on first miss.
        let mut processed = 0usize;
        while processed < worklist.len() {
            let set = worklist[processed].clone();
            let from = processed as StateId;
            processed += 1;

            // Per-symbol successor sets. Wildcard transitions feed all
            // columns; doing one pass over transitions keeps this
            // O(|set| · out-degree + n_symbols).
            let mut per_symbol: Vec<Vec<u32>> = vec![Vec::new(); n_symbols];
            let mut any: Vec<u32> = Vec::new();
            for &s in &set {
                for t in nfa.transitions_from(s) {
                    match t.label {
                        Label::Eps => {}
                        Label::Sym(sym) => per_symbol[sym.index()].push(t.to),
                        Label::Any => any.push(t.to),
                    }
                }
            }
            for (sym, mut targets) in per_symbol.into_iter().enumerate() {
                targets.extend_from_slice(&any);
                let closure = nfa.eps_closure(&targets);
                let to = intern(closure, &mut table, &mut accepting, &mut worklist);
                table[from as usize * n_symbols + sym] = to;
            }
        }

        Dfa::from_parts(n_symbols, table, start, accepting)
    }

    /// Do the invariants [`Dfa::from_parts`] asserts hold? Serde
    /// deserialization bypasses that constructor, so loaders of
    /// persisted DFAs must check before trusting the table shape.
    pub fn is_well_formed(&self) -> bool {
        let n = self.n_states as usize;
        n > 0
            && self.accepting.len() == n
            && self.table.len() == n * self.n_symbols as usize
            && (self.start as usize) < n
            && self.table.iter().all(|&t| (t as usize) < n)
    }

    /// Number of states (including any dead state).
    pub fn n_states(&self) -> usize {
        self.n_states as usize
    }

    /// Alphabet size.
    pub fn n_symbols(&self) -> usize {
        self.n_symbols as usize
    }

    /// Start state `q0`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Is `q` accepting?
    #[inline]
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q as usize]
    }

    /// Accepting-state bitmask view.
    pub fn accepting(&self) -> &[bool] {
        &self.accepting
    }

    /// The total transition function `δ(q, a)`.
    #[inline]
    pub fn next(&self, q: StateId, a: Symbol) -> StateId {
        self.table[q as usize * self.n_symbols as usize + a.index()]
    }

    /// Extended transition function `δ*(q, w)`.
    pub fn run_from(&self, q: StateId, word: &[Symbol]) -> StateId {
        word.iter().fold(q, |q, &a| self.next(q, a))
    }

    /// Does the DFA accept `word` from the start state?
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.is_accepting(self.run_from(self.start, word))
    }

    /// Is ε in the language?
    pub fn accepts_epsilon(&self) -> bool {
        self.is_accepting(self.start)
    }

    /// States from which no accepting state is reachable ("dead" states).
    pub fn dead_states(&self) -> Vec<bool> {
        // Reverse reachability from accepting states.
        let n = self.n_states();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for q in 0..n {
            for a in 0..self.n_symbols() {
                let to = self.table[q * self.n_symbols() + a] as usize;
                rev[to].push(q as u32);
            }
        }
        let mut alive = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&q| self.accepting[q as usize])
            .collect();
        for &q in &stack {
            alive[q as usize] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q as usize] {
                if !alive[p as usize] {
                    alive[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        alive.iter().map(|&a| !a).collect()
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.dead_states()[self.start as usize]
    }

    /// All transitions `(q, a, q')` as an iterator (diagnostics / tests).
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        (0..self.n_states()).flat_map(move |q| {
            (0..self.n_symbols()).map(move |a| {
                (
                    q as StateId,
                    Symbol(a as u32),
                    self.table[q * self.n_symbols() + a],
                )
            })
        })
    }

    /// Product automaton accepting `L(self) ∩ L(other)` (test utility).
    ///
    /// # Panics
    /// Panics if alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        assert_eq!(self.n_symbols, other.n_symbols, "alphabet mismatch");
        let m = self.n_symbols();
        let pair_id = |a: StateId, b: StateId| (a as usize * other.n_states() + b as usize) as u32;
        let n = self.n_states() * other.n_states();
        let mut table = vec![0u32; n * m];
        let mut accepting = vec![false; n];
        for qa in 0..self.n_states() as u32 {
            for qb in 0..other.n_states() as u32 {
                let id = pair_id(qa, qb) as usize;
                accepting[id] = self.is_accepting(qa) && other.is_accepting(qb);
                for a in 0..m {
                    let sym = Symbol(a as u32);
                    table[id * m + a] = pair_id(self.next(qa, sym), other.next(qb, sym));
                }
            }
        }
        Dfa::from_parts(m, table, pair_id(self.start, other.start), accepting)
    }

    /// Complement automaton (complete DFAs make this a flip of accepting).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accepting {
            *a = !*a;
        }
        out
    }

    /// Language equivalence via symmetric-difference emptiness.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.intersect(&other.complement()).is_empty()
            && other.intersect(&self.complement()).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Regex;
    use crate::nfa::Nfa;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    fn s(i: u32) -> Regex {
        Regex::Sym(sym(i))
    }

    fn dfa_of(re: &Regex, n: usize) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(re, n))
    }

    #[test]
    fn dfa_agrees_with_nfa_on_small_words() {
        let res = [
            Regex::ifq(&[sym(0), sym(1)]),
            Regex::star(Regex::alt(vec![s(0), Regex::concat(vec![s(1), s(2)])])),
            Regex::plus(Regex::Wildcard),
            Regex::Empty,
            Regex::Epsilon,
            Regex::optional(Regex::concat(vec![s(0), s(0)])),
        ];
        for re in &res {
            let nfa = Nfa::from_regex(re, 3);
            let dfa = Dfa::from_nfa(&nfa);
            // Exhaustively compare on all words of length ≤ 4 over {0,1,2}.
            let mut words: Vec<Vec<Symbol>> = vec![vec![]];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &words {
                    for a in 0..3 {
                        let mut w2 = w.clone();
                        w2.push(sym(a));
                        next.push(w2);
                    }
                }
                for w in next {
                    words.push(w);
                }
            }
            for w in &words {
                assert_eq!(dfa.accepts(w), nfa.accepts(w), "regex {re:?}, word {w:?}");
            }
        }
    }

    #[test]
    fn dfa_is_complete() {
        let dfa = dfa_of(&s(0), 2);
        // Every (state, symbol) has a target — from_parts would have
        // panicked otherwise. Check a dead state really exists.
        let dead = dfa.dead_states();
        assert!(dead.iter().any(|&d| d));
    }

    #[test]
    fn empty_language_detected() {
        assert!(dfa_of(&Regex::Empty, 2).is_empty());
        assert!(!dfa_of(&Regex::Epsilon, 2).is_empty());
        assert!(!dfa_of(&s(0), 2).is_empty());
    }

    #[test]
    fn epsilon_membership() {
        assert!(dfa_of(&Regex::any_star(), 2).accepts_epsilon());
        assert!(!dfa_of(&Regex::plus(Regex::Wildcard), 2).accepts_epsilon());
    }

    #[test]
    fn intersect_and_equivalence() {
        // a* b* ∩ b* a* = a* | b*  … over {a,b} that's words of one letter.
        let l = dfa_of(
            &Regex::concat(vec![Regex::star(s(0)), Regex::star(s(1))]),
            2,
        );
        let r = dfa_of(
            &Regex::concat(vec![Regex::star(s(1)), Regex::star(s(0))]),
            2,
        );
        let both = l.intersect(&r);
        let expect = dfa_of(&Regex::alt(vec![Regex::star(s(0)), Regex::star(s(1))]), 2);
        assert!(both.equivalent(&expect));
        assert!(!l.equivalent(&r));
    }

    #[test]
    fn complement_flips_membership() {
        let dfa = dfa_of(&s(0), 2);
        let comp = dfa.complement();
        assert!(dfa.accepts(&[sym(0)]));
        assert!(!comp.accepts(&[sym(0)]));
        assert!(comp.accepts(&[]));
    }

    #[test]
    fn run_from_composes() {
        let dfa = dfa_of(&Regex::concat(vec![s(0), s(1)]), 2);
        let mid = dfa.run_from(dfa.start(), &[sym(0)]);
        let end = dfa.run_from(mid, &[sym(1)]);
        assert!(dfa.is_accepting(end));
    }
}
