//! Thompson-style NFA construction from a regex AST.
//!
//! Wildcard edges are kept symbolic (`Label::Any`) rather than fanned out
//! over the alphabet, so NFA size stays `O(|R|)` regardless of `|Γ|`;
//! subset construction resolves them against the concrete alphabet.

use crate::ast::{Regex, Symbol};

/// NFA transition label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// ε-move.
    Eps,
    /// A concrete symbol.
    Sym(Symbol),
    /// Any single symbol (wildcard).
    Any,
}

/// One transition `from --label--> to`.
#[derive(Debug, Clone, Copy)]
pub struct Transition {
    /// The edge label (ε, a symbol, or the wildcard).
    pub label: Label,
    /// Target state.
    pub to: u32,
}

/// A Thompson NFA with a single start state and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Outgoing transitions per state.
    transitions: Vec<Vec<Transition>>,
    start: u32,
    accept: u32,
    n_symbols: usize,
}

impl Nfa {
    /// Build an NFA for `regex` over an alphabet of `n_symbols` symbols.
    ///
    /// # Panics
    /// Panics if the regex mentions a symbol outside `0..n_symbols` —
    /// interning guarantees this for well-formed callers.
    pub fn from_regex(regex: &Regex, n_symbols: usize) -> Nfa {
        let mut b = Builder {
            transitions: Vec::new(),
            n_symbols,
        };
        let frag = b.build(regex);
        Nfa {
            transitions: b.transitions,
            start: frag.start,
            accept: frag.accept,
            n_symbols,
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.transitions.len()
    }

    /// Alphabet size.
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// The unique start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// The unique accept state.
    pub fn accept(&self) -> u32 {
        self.accept
    }

    /// Outgoing transitions of `state`.
    pub fn transitions_from(&self, state: u32) -> &[Transition] {
        &self.transitions[state as usize]
    }

    /// ε-closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, states: &[u32]) -> Vec<u32> {
        let mut seen = vec![false; self.n_states()];
        let mut stack: Vec<u32> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for t in &self.transitions[s as usize] {
                if t.label == Label::Eps && !seen[t.to as usize] {
                    seen[t.to as usize] = true;
                    stack.push(t.to);
                    out.push(t.to);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Direct NFA word acceptance (used by tests as an oracle for the DFA).
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.eps_closure(&[self.start]);
        for &sym in word {
            let mut next = Vec::new();
            for &s in &current {
                for t in &self.transitions[s as usize] {
                    let matches = match t.label {
                        Label::Eps => false,
                        Label::Sym(ts) => ts == sym,
                        Label::Any => true,
                    };
                    if matches {
                        next.push(t.to);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = self.eps_closure(&next);
        }
        current.binary_search(&self.accept).is_ok()
    }
}

struct Frag {
    start: u32,
    accept: u32,
}

struct Builder {
    transitions: Vec<Vec<Transition>>,
    n_symbols: usize,
}

impl Builder {
    fn new_state(&mut self) -> u32 {
        self.transitions.push(Vec::new());
        (self.transitions.len() - 1) as u32
    }

    fn edge(&mut self, from: u32, label: Label, to: u32) {
        self.transitions[from as usize].push(Transition { label, to });
    }

    fn build(&mut self, re: &Regex) -> Frag {
        match re {
            Regex::Empty => {
                // Two disconnected states: nothing accepted.
                let start = self.new_state();
                let accept = self.new_state();
                Frag { start, accept }
            }
            Regex::Epsilon => {
                let start = self.new_state();
                let accept = self.new_state();
                self.edge(start, Label::Eps, accept);
                Frag { start, accept }
            }
            Regex::Sym(s) => {
                assert!(
                    s.index() < self.n_symbols,
                    "symbol {s:?} outside alphabet of size {}",
                    self.n_symbols
                );
                let start = self.new_state();
                let accept = self.new_state();
                self.edge(start, Label::Sym(*s), accept);
                Frag { start, accept }
            }
            Regex::Wildcard => {
                let start = self.new_state();
                let accept = self.new_state();
                self.edge(start, Label::Any, accept);
                Frag { start, accept }
            }
            Regex::Concat(parts) => {
                debug_assert!(!parts.is_empty());
                let mut iter = parts.iter();
                let first = self.build(iter.next().expect("non-empty concat"));
                let mut prev_accept = first.accept;
                for p in iter {
                    let f = self.build(p);
                    self.edge(prev_accept, Label::Eps, f.start);
                    prev_accept = f.accept;
                }
                Frag {
                    start: first.start,
                    accept: prev_accept,
                }
            }
            Regex::Alt(parts) => {
                let start = self.new_state();
                let accept = self.new_state();
                for p in parts {
                    let f = self.build(p);
                    self.edge(start, Label::Eps, f.start);
                    self.edge(f.accept, Label::Eps, accept);
                }
                Frag { start, accept }
            }
            Regex::Star(inner) => {
                let start = self.new_state();
                let accept = self.new_state();
                let f = self.build(inner);
                self.edge(start, Label::Eps, f.start);
                self.edge(start, Label::Eps, accept);
                self.edge(f.accept, Label::Eps, f.start);
                self.edge(f.accept, Label::Eps, accept);
                Frag { start, accept }
            }
            Regex::Plus(inner) => {
                let f = self.build(inner);
                let accept = self.new_state();
                self.edge(f.accept, Label::Eps, f.start);
                self.edge(f.accept, Label::Eps, accept);
                Frag {
                    start: f.start,
                    accept,
                }
            }
            Regex::Optional(inner) => {
                let start = self.new_state();
                let accept = self.new_state();
                let f = self.build(inner);
                self.edge(start, Label::Eps, f.start);
                self.edge(start, Label::Eps, accept);
                self.edge(f.accept, Label::Eps, accept);
                Frag { start, accept }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Regex;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    fn s(i: u32) -> Regex {
        Regex::Sym(sym(i))
    }

    #[test]
    fn accepts_single_symbol() {
        let nfa = Nfa::from_regex(&s(0), 2);
        assert!(nfa.accepts(&[sym(0)]));
        assert!(!nfa.accepts(&[sym(1)]));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[sym(0), sym(0)]));
    }

    #[test]
    fn accepts_concat() {
        let nfa = Nfa::from_regex(&Regex::concat(vec![s(0), s(1)]), 2);
        assert!(nfa.accepts(&[sym(0), sym(1)]));
        assert!(!nfa.accepts(&[sym(1), sym(0)]));
    }

    #[test]
    fn accepts_alt() {
        let nfa = Nfa::from_regex(&Regex::alt(vec![s(0), s(1)]), 3);
        assert!(nfa.accepts(&[sym(0)]));
        assert!(nfa.accepts(&[sym(1)]));
        assert!(!nfa.accepts(&[sym(2)]));
    }

    #[test]
    fn accepts_star_including_empty() {
        let nfa = Nfa::from_regex(&Regex::star(s(0)), 1);
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[sym(0)]));
        assert!(nfa.accepts(&[sym(0), sym(0), sym(0)]));
    }

    #[test]
    fn plus_requires_one() {
        let nfa = Nfa::from_regex(&Regex::plus(s(0)), 1);
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[sym(0)]));
        assert!(nfa.accepts(&[sym(0), sym(0)]));
    }

    #[test]
    fn wildcard_matches_anything_once() {
        let nfa = Nfa::from_regex(&Regex::Wildcard, 3);
        for i in 0..3 {
            assert!(nfa.accepts(&[sym(i)]));
        }
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[sym(0), sym(1)]));
    }

    #[test]
    fn empty_language_accepts_nothing() {
        let nfa = Nfa::from_regex(&Regex::Empty, 2);
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[sym(0)]));
    }

    #[test]
    fn ifq_semantics() {
        // _* t0 _* t1 _*
        let re = Regex::ifq(&[sym(0), sym(1)]);
        let nfa = Nfa::from_regex(&re, 3);
        assert!(nfa.accepts(&[sym(0), sym(1)]));
        assert!(nfa.accepts(&[sym(2), sym(0), sym(2), sym(1), sym(2)]));
        assert!(!nfa.accepts(&[sym(1), sym(0)]));
        assert!(!nfa.accepts(&[sym(0)]));
    }

    #[test]
    fn eps_closure_is_sorted_and_transitive() {
        // (a|b)* has a chain of ε states.
        let re = Regex::star(Regex::alt(vec![s(0), s(1)]));
        let nfa = Nfa::from_regex(&re, 2);
        let cl = nfa.eps_closure(&[nfa.start()]);
        assert!(cl.windows(2).all(|w| w[0] < w[1]));
        assert!(cl.contains(&nfa.accept()));
    }
}
