#![warn(missing_docs)]

//! Regular-expression and finite-automaton machinery for regular path
//! queries over workflow provenance.
//!
//! The paper (Huang et al., ICDE 2015) relies on the `dk.brics.automaton`
//! Java library to parse regular expressions and minimize DFAs; this crate
//! is the Rust replacement. It provides:
//!
//! * a regex AST over an interned symbol alphabet ([`Regex`]),
//! * a text syntax for queries ([`parse`]), e.g. `"_* e _*"` for the
//!   paper's query `R3` and `"x (a1|a2)+ s _* p"` for the introduction's
//!   example,
//! * Thompson-style NFAs ([`nfa::Nfa`]),
//! * complete (total) DFAs via subset construction ([`dfa::Dfa`]),
//! * Hopcroft minimization ([`minimize::minimize`]),
//! * language analyses used by the query planner and the baselines
//!   ([`analysis`]).
//!
//! Symbols are small integers ([`Symbol`]); callers (the grammar crate)
//! intern edge-tag names to symbols. The *wildcard* `_` matches any single
//! symbol of the alphabet, mirroring the paper's `⎵` tag wildcard.

pub mod analysis;
pub mod ast;
pub mod dfa;
pub mod minimize;
pub mod nfa;
pub mod parser;

pub use analysis::{contains_epsilon, is_empty, required_symbols};
pub use ast::{Regex, Symbol};
pub use dfa::{Dfa, StateId, DEAD_STATE_NONE};
pub use minimize::minimize;
pub use nfa::Nfa;
pub use parser::{parse, ParseError};

/// Compile a regex AST straight to a *minimal, complete* DFA over an
/// alphabet of `n_symbols` symbols.
///
/// This is the one-stop entry point used by the query planner: the paper's
/// Lemma 3.2 shows safety checking may (and should) be performed on the
/// minimal DFA.
pub fn compile_minimal_dfa(regex: &Regex, n_symbols: usize) -> Dfa {
    let nfa = Nfa::from_regex(regex, n_symbols);
    let dfa = Dfa::from_nfa(&nfa);
    minimize(&dfa)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile_ifq() {
        // _* a _* over alphabet {a, b}: minimal DFA has 2 states.
        let re = parse("_* s0 _*", &mut |name| match name {
            "s0" => Some(Symbol(0)),
            _ => None,
        })
        .unwrap();
        let dfa = compile_minimal_dfa(&re, 2);
        assert_eq!(dfa.n_states(), 2);
        assert!(dfa.accepts(&[Symbol(1), Symbol(0), Symbol(1)]));
        assert!(!dfa.accepts(&[Symbol(1), Symbol(1)]));
    }
}
