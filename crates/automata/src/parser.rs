//! Text syntax for regular path queries.
//!
//! ```text
//! alt    := cat ('|' cat)*
//! cat    := postfix+                (juxtaposition concatenates)
//! postfix:= atom ('*' | '+' | '?')*
//! atom   := IDENT | '_' | '~' | '(' alt ')'
//! IDENT  := [A-Za-z][A-Za-z0-9_.:-]*  (must start with a letter)
//! ```
//!
//! `_` is the single-symbol wildcard (the paper's `⎵`), `~` is ε.
//! Whitespace separates tokens and is otherwise ignored, so the paper's
//! query `R3 = ⎵* e ⎵*` is written `"_* e _*"` and the introduction's
//! example `x.(a1|a2)+.s.⎵*.p` is written `"x (a1|a2)+ s _* p"`.
//! (An infix `.` is *not* an operator; `.` may appear inside identifiers
//! because myExperiment module names contain dots.)
//!
//! Symbol identifiers are resolved through a caller-supplied interner
//! closure so the parser stays independent of the grammar crate.

use crate::ast::{Regex, Symbol};
use std::fmt;

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a query string, resolving identifiers via `intern`.
///
/// `intern` returns `None` for unknown tag names, which is reported as a
/// parse error (queries over tags the workflow cannot produce are almost
/// always user mistakes; callers wanting "unknown tag = empty language"
/// semantics can intern to a fresh symbol instead).
pub fn parse(
    input: &str,
    intern: &mut dyn FnMut(&str) -> Option<Symbol>,
) -> Result<Regex, ParseError> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
        intern,
    };
    let re = p.alt()?;
    if p.pos != p.tokens.len() {
        let t = &p.tokens[p.pos];
        return Err(ParseError {
            at: t.at,
            message: format!("unexpected trailing token {:?}", t.kind),
        });
    }
    Ok(re)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    Wildcard,
    Epsilon,
    Star,
    Plus,
    Question,
    Pipe,
    LParen,
    RParen,
}

#[derive(Debug, Clone)]
struct Token {
    kind: TokKind,
    at: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-')
}

fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        let kind = match c {
            c if c.is_whitespace() => {
                chars.next();
                continue;
            }
            '_' => TokKind::Wildcard,
            '~' => TokKind::Epsilon,
            '*' => TokKind::Star,
            '+' => TokKind::Plus,
            '?' => TokKind::Question,
            '|' => TokKind::Pipe,
            '(' => TokKind::LParen,
            ')' => TokKind::RParen,
            c if is_ident_start(c) => {
                let mut ident = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_ident_continue(c) {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Ident(ident),
                    at,
                });
                continue;
            }
            other => {
                return Err(ParseError {
                    at,
                    message: format!("unexpected character {other:?}"),
                })
            }
        };
        chars.next();
        out.push(Token { kind, at });
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    intern: &'a mut dyn FnMut(&str) -> Option<Symbol>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&TokKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.at)
            .unwrap_or(usize::MAX)
    }

    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.cat()?];
        while self.peek() == Some(&TokKind::Pipe) {
            self.pos += 1;
            parts.push(self.cat()?);
        }
        Ok(Regex::alt(parts))
    }

    fn cat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.postfix()?];
        while matches!(
            self.peek(),
            Some(TokKind::Ident(_) | TokKind::Wildcard | TokKind::Epsilon | TokKind::LParen)
        ) {
            parts.push(self.postfix()?);
        }
        Ok(Regex::concat(parts))
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut re = self.atom()?;
        loop {
            match self.peek() {
                Some(TokKind::Star) => {
                    self.pos += 1;
                    re = Regex::star(re);
                }
                Some(TokKind::Plus) => {
                    self.pos += 1;
                    re = Regex::plus(re);
                }
                Some(TokKind::Question) => {
                    self.pos += 1;
                    re = Regex::optional(re);
                }
                _ => return Ok(re),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        let at = self.at();
        match self.peek().cloned() {
            Some(TokKind::Ident(name)) => {
                self.pos += 1;
                match (self.intern)(&name) {
                    Some(sym) => Ok(Regex::Sym(sym)),
                    None => Err(ParseError {
                        at,
                        message: format!("unknown tag {name:?}"),
                    }),
                }
            }
            Some(TokKind::Wildcard) => {
                self.pos += 1;
                Ok(Regex::Wildcard)
            }
            Some(TokKind::Epsilon) => {
                self.pos += 1;
                Ok(Regex::Epsilon)
            }
            Some(TokKind::LParen) => {
                self.pos += 1;
                let re = self.alt()?;
                if self.peek() == Some(&TokKind::RParen) {
                    self.pos += 1;
                    Ok(re)
                } else {
                    Err(ParseError {
                        at: self.at(),
                        message: "expected ')'".to_owned(),
                    })
                }
            }
            other => Err(ParseError {
                at,
                message: format!("expected atom, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interner mapping `t<i>` → `Symbol(i)` plus a few letters.
    fn test_intern(name: &str) -> Option<Symbol> {
        match name {
            "a" => Some(Symbol(0)),
            "b" => Some(Symbol(1)),
            "c" => Some(Symbol(2)),
            "e" => Some(Symbol(3)),
            _ => name
                .strip_prefix('t')
                .and_then(|n| n.parse().ok().map(Symbol)),
        }
    }

    fn p(input: &str) -> Regex {
        parse(input, &mut test_intern).unwrap()
    }

    #[test]
    fn parses_single_symbol() {
        assert_eq!(p("a"), Regex::Sym(Symbol(0)));
    }

    #[test]
    fn parses_r3_from_the_paper() {
        // R3 = ⎵* e ⎵*
        assert_eq!(
            p("_* e _*"),
            Regex::Concat(vec![
                Regex::any_star(),
                Regex::Sym(Symbol(3)),
                Regex::any_star()
            ])
        );
    }

    #[test]
    fn parses_intro_example() {
        // x.(a1|a2)+.s.⎵*.p with symbols renamed to t-ids
        let r = p("t9 (t1|t2)+ t3 _* t4");
        assert_eq!(r.size(), 10);
        assert!(!r.nullable());
    }

    #[test]
    fn precedence_star_binds_tighter_than_concat() {
        assert_eq!(
            p("a b*"),
            Regex::Concat(vec![
                Regex::Sym(Symbol(0)),
                Regex::star(Regex::Sym(Symbol(1)))
            ])
        );
    }

    #[test]
    fn precedence_concat_binds_tighter_than_alt() {
        assert_eq!(
            p("a b|c"),
            Regex::alt(vec![
                Regex::concat(vec![Regex::Sym(Symbol(0)), Regex::Sym(Symbol(1))]),
                Regex::Sym(Symbol(2)),
            ])
        );
    }

    #[test]
    fn parens_override_precedence() {
        assert_eq!(
            p("a (b|c)"),
            Regex::concat(vec![
                Regex::Sym(Symbol(0)),
                Regex::alt(vec![Regex::Sym(Symbol(1)), Regex::Sym(Symbol(2))]),
            ])
        );
    }

    #[test]
    fn epsilon_and_question() {
        assert_eq!(p("~"), Regex::Epsilon);
        assert_eq!(p("a?"), Regex::optional(Regex::Sym(Symbol(0))));
        assert!(p("a?").nullable());
    }

    #[test]
    fn double_postfix_applies_in_order() {
        assert_eq!(p("a+*"), Regex::star(Regex::Sym(Symbol(0))));
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let err = parse("zz", &mut test_intern).unwrap_err();
        assert!(err.message.contains("unknown tag"));
    }

    #[test]
    fn unbalanced_paren_is_an_error() {
        assert!(parse("(a", &mut test_intern).is_err());
        assert!(parse("a)", &mut test_intern).is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("", &mut test_intern).is_err());
    }

    #[test]
    fn identifiers_may_contain_dots_and_digits() {
        let mut names = Vec::new();
        let r = parse("Blast.run2", &mut |n| {
            names.push(n.to_owned());
            Some(Symbol(42))
        })
        .unwrap();
        assert_eq!(r, Regex::Sym(Symbol(42)));
        assert_eq!(names, vec!["Blast.run2"]);
    }

    #[test]
    fn display_parses_back() {
        let namer = |s: Symbol| format!("t{}", s.0);
        let original = p("(t1|t2 t3)* t4+ _?");
        let rendered = original.display_with(&namer).to_string();
        assert_eq!(p(&rendered), original);
    }
}
