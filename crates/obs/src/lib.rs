#![warn(missing_docs)]

//! Hand-rolled observability core for the rpq workspace.
//!
//! Three pieces, all std-only and shim-compatible:
//!
//! * [`registry`] — named atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log₂-scale latency [`Histogram`]s behind a
//!   [`Registry`]; recording is lock-free, and [`Registry::snapshot`]
//!   freezes everything into a [`MetricsSnapshot`] that merges
//!   name-wise across processes (the router uses this to aggregate a
//!   fleet) and renders a Prometheus-style text exposition;
//! * [`trace`] — a thread-local span API ([`Trace::begin`] /
//!   [`Trace::span`] / [`Trace::take`]) producing flat per-query
//!   stage breakdowns with self-time accounting, which
//!   `rpq_core::Session::evaluate` lands in `EvalMeta`;
//! * [`slowlog`] — a bounded ring buffer of [`SlowQuery`] captures
//!   (query text, run fingerprint, kernel/closure counts, stage
//!   timings) for requests over a `--slow-ms` threshold.
//!
//! The paper's decomposition pipeline makes query cost highly
//! shape-dependent (safe vs. decomposed plans, kernel choice, closure
//! strategy), so "the query was slow" is rarely actionable on its own;
//! the span breakdown and slow-query log say *which stage* ate the
//! time.

pub mod registry;
pub mod slowlog;
pub mod trace;

pub use registry::{
    bucket_bound, bucket_index, global, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry, BUCKETS,
};
pub use slowlog::{SlowLog, SlowQuery, DEFAULT_CAPACITY};
pub use trace::{enabled, set_enabled, stages_total, Span, Stages, Trace};
