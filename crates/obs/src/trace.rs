//! Per-query tracing: named spans collected into a flat stage
//! breakdown on the recording thread.
//!
//! Evaluation in this workspace is synchronous on the calling thread
//! (the same property the relalg closure counters exploit), so a trace
//! is a thread-local *frame*: [`Trace::begin`] opens one,
//! [`Trace::span`] guards time a stage, and [`Trace::take`] closes the
//! frame and returns `(stage, µs)` pairs. Nested spans attribute
//! *self time* only — a parent's entry excludes time spent under child
//! spans — so the stages of one frame never double-count and their sum
//! is bounded by the frame's wall time.
//!
//! Frames nest too (a server frame around a session frame): spans
//! always record into the innermost open frame, and a span that is
//! open when no frame is active records nowhere. Tracing can be
//! disabled process-wide ([`set_enabled`]) for overhead guards; an
//! inert span costs one relaxed atomic load.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One collected stage breakdown: `(stage name, self-time µs)` pairs
/// in first-recorded order, same-name spans summed.
pub type Stages = Vec<(&'static str, u64)>;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable span recording process-wide (default: enabled).
/// Used by the bench overhead guard; frames still open and close, they
/// just collect nothing.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// Open frames, innermost last.
    static FRAMES: RefCell<Vec<Stages>> = const { RefCell::new(Vec::new()) };
    /// Child-time accumulators for the open span stack.
    static SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The tracing entry points (all associated functions; the thread
/// holds the state).
pub struct Trace;

impl Trace {
    /// Open a new frame: subsequent spans on this thread record into
    /// it until the matching [`Trace::take`].
    pub fn begin() {
        FRAMES.with(|f| f.borrow_mut().push(Vec::new()));
    }

    /// Close the innermost frame and return its stage breakdown
    /// (empty if no frame was open).
    pub fn take() -> Stages {
        FRAMES.with(|f| f.borrow_mut().pop()).unwrap_or_default()
    }

    /// Time a stage until the returned guard drops. Inert (and nearly
    /// free) when tracing is disabled or no frame is open.
    pub fn span(name: &'static str) -> Span {
        if !enabled() || FRAMES.with(|f| f.borrow().is_empty()) {
            return Span {
                name,
                started: None,
            };
        }
        SPANS.with(|s| s.borrow_mut().push(0));
        Span {
            name,
            started: Some(Instant::now()),
        }
    }
}

/// A live span; records its self time into the innermost frame on
/// drop.
pub struct Span {
    name: &'static str,
    started: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let elapsed = started.elapsed().as_micros() as u64;
        let child = SPANS.with(|s| s.borrow_mut().pop()).unwrap_or(0);
        SPANS.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                *parent += elapsed;
            }
        });
        let self_us = elapsed.saturating_sub(child);
        FRAMES.with(|f| {
            if let Some(frame) = f.borrow_mut().last_mut() {
                match frame.iter_mut().find(|(n, _)| *n == self.name) {
                    Some((_, total)) => *total += self_us,
                    None => frame.push((self.name, self_us)),
                }
            }
        });
    }
}

/// Sum of a breakdown's stage times, µs.
pub fn stages_total(stages: &[(&'static str, u64)]) -> u64 {
    stages.iter().map(|(_, us)| *us).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_enabled` is process-global; serialize the tests that
    /// depend on its value.
    static ENABLED_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn spin_us(us: u64) {
        let t0 = Instant::now();
        while (t0.elapsed().as_micros() as u64) < us {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_record_self_time_only() {
        let _hold = ENABLED_LOCK.lock().unwrap();
        Trace::begin();
        let wall = Instant::now();
        {
            let _outer = Trace::span("outer");
            spin_us(300);
            {
                let _inner = Trace::span("inner");
                spin_us(300);
            }
            spin_us(300);
        }
        let wall_us = wall.elapsed().as_micros() as u64;
        let stages = Trace::take();
        let sum = stages_total(&stages);
        assert_eq!(stages.len(), 2, "{stages:?}");
        assert!(sum <= wall_us, "self-time sum {sum} exceeds wall {wall_us}");
        let inner = stages.iter().find(|(n, _)| *n == "inner").unwrap().1;
        let outer = stages.iter().find(|(n, _)| *n == "outer").unwrap().1;
        assert!(inner >= 300, "{stages:?}");
        assert!(outer >= 600, "{stages:?}");
    }

    #[test]
    fn same_name_spans_sum_and_frames_nest() {
        let _hold = ENABLED_LOCK.lock().unwrap();
        Trace::begin();
        {
            let _a = Trace::span("a");
            spin_us(100);
        }
        Trace::begin();
        {
            let _b = Trace::span("b");
            spin_us(100);
        }
        let inner = Trace::take();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].0, "b");
        {
            let _a = Trace::span("a");
            spin_us(100);
        }
        let outer = Trace::take();
        assert_eq!(outer.len(), 1, "{outer:?}");
        assert!(outer[0].1 >= 200, "{outer:?}");
    }

    #[test]
    fn spans_without_a_frame_or_when_disabled_are_inert() {
        let _hold = ENABLED_LOCK.lock().unwrap();
        {
            let _orphan = Trace::span("orphan");
            spin_us(50);
        }
        assert!(Trace::take().is_empty());
        set_enabled(false);
        Trace::begin();
        {
            let _muted = Trace::span("muted");
            spin_us(50);
        }
        let stages = Trace::take();
        set_enabled(true);
        assert!(stages.is_empty(), "{stages:?}");
    }
}
