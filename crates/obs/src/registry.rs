//! The metrics registry: named atomic counters, gauges, and log₂-scale
//! latency histograms with lock-free recording and mergeable snapshots.
//!
//! Handles are `&'static` references obtained once at wiring time (the
//! registry leaks one small allocation per distinct metric name, which
//! is the point: metrics live for the process); recording afterwards is
//! a single relaxed atomic op with no lock on the hot path. Labels use
//! the Prometheus inline syntax directly in the metric name
//! (`requests_total{backend="10.0.0.1:4000"}`), so aggregation across
//! processes is plain name-wise merging.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log₂ histogram buckets. Bucket `i` (for `i ≥ 1`) holds
/// values whose bit length is `i`, i.e. `[2^(i-1), 2^i - 1]`; bucket 0
/// holds zero; the last bucket absorbs everything larger. 40 buckets
/// cover 0 .. 2³⁸ µs (~76 hours) before saturating.
pub const BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Map a recorded value to its log₂ bucket index.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let bits = 64 - v.leading_zeros() as usize;
    bits.min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket log₂-scale histogram; recording is one relaxed
/// `fetch_add` per bucket plus two for count/sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation (microseconds, by convention).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A mergeable point-in-time histogram copy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKETS` entries when produced
    /// locally; merging tolerates shorter vectors from older peers).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Bucket-wise sum of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Quantile estimate: the inclusive upper bound of the bucket
    /// containing the rank-`⌈q·count⌉` observation. Because buckets
    /// are log₂-scale the estimate is at most 2× the true value (and
    /// never below it).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
    notes: BTreeMap<String, String>,
}

/// A named collection of metrics. Components keep an owned or shared
/// registry, resolve `&'static` handles once, and record lock-free
/// afterwards; `snapshot()` freezes everything for exposition or
/// wire transfer.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(c) = inner.counters.get(name) {
            return c;
        }
        let leaked: &'static Counter = Box::leak(Box::new(Counter::new()));
        inner.counters.insert(name.to_owned(), leaked);
        leaked
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(g) = inner.gauges.get(name) {
            return g;
        }
        let leaked: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        inner.gauges.insert(name.to_owned(), leaked);
        leaked
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(h) = inner.histograms.get(name) {
            return h;
        }
        let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        inner.histograms.insert(name.to_owned(), leaked);
        leaked
    }

    /// Set (overwrite) a free-text annotation carried with snapshots —
    /// e.g. the last configuration warning.
    pub fn note(&self, key: &str, text: &str) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.notes.insert(key.to_owned(), text.to_owned());
    }

    /// Freeze every registered metric into a mergeable snapshot
    /// (entries sorted by name).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            notes: inner
                .notes
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

static GLOBAL: Mutex<Option<&'static Registry>> = Mutex::new(None);

/// The process-wide registry, for cross-crate counters that have no
/// natural owner (e.g. client connect retries).
pub fn global() -> &'static Registry {
    let mut slot = GLOBAL.lock().expect("global registry poisoned");
    if let Some(r) = *slot {
        return r;
    }
    let leaked: &'static Registry = Box::leak(Box::new(Registry::new()));
    *slot = Some(leaked);
    leaked
}

/// A frozen, mergeable view of a registry (plus, when merged across a
/// fleet, of many registries). Counters and histograms sum name-wise;
/// gauges sum (fleet gauges read as totals); notes keep the first
/// non-empty text per key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter readings, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge readings, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histogram readings, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(key, text)` annotations, sorted by key.
    pub notes: Vec<(String, String)>,
}

fn merge_into<V, F: FnMut(&mut V, &V)>(dst: &mut Vec<(String, V)>, src: &[(String, V)], mut f: F)
where
    V: Clone,
{
    for (name, v) in src {
        match dst.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => f(&mut dst[i].1, v),
            Err(i) => dst.insert(i, (name.clone(), v.clone())),
        }
    }
}

impl MetricsSnapshot {
    /// Merge `other` into `self` (name-wise; see type docs for the
    /// per-kind rule). Merging is associative and commutative for
    /// counters, gauges, and histograms.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_into(&mut self.counters, &other.counters, |a, b| *a += *b);
        merge_into(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        merge_into(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
        merge_into(&mut self.notes, &other.notes, |a, b| {
            if a.is_empty() {
                b.clone_into(a);
            }
        });
    }

    /// Value of the counter named `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus-style plain-text exposition. Histograms expand to
    /// cumulative `_bucket{le="..."}` lines plus `_sum`/`_count`;
    /// labelled names (inline `{...}`) are spliced correctly; notes
    /// render as `# NOTE key text` comment lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (key, text) in &self.notes {
            out.push_str(&format!("# NOTE {key} {}\n", text.replace('\n', " ")));
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {} counter\n{name} {v}\n", family(name)));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n{name} {v}\n", family(name)));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {} histogram\n", family(name)));
            let mut cumulative = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cumulative += n;
                if *n == 0 && i + 1 != h.buckets.len() {
                    continue; // keep the exposition readable
                }
                let le = if i + 1 == h.buckets.len() {
                    "+Inf".to_owned()
                } else {
                    bucket_bound(i).to_string()
                };
                out.push_str(&labelled(name, "bucket", &format!("le=\"{le}\"")));
                out.push_str(&format!(" {cumulative}\n"));
            }
            out.push_str(&labelled(name, "sum", ""));
            out.push_str(&format!(" {}\n", h.sum));
            out.push_str(&labelled(name, "count", ""));
            out.push_str(&format!(" {}\n", h.count));
        }
        out
    }
}

/// Family name: the metric name with any inline label set stripped.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// `name_<suffix>` with `extra` appended to (or opening) the label
/// set — the suffix goes on the *base* name so a labelled histogram
/// expands to `base_sum{labels}`, never `base{labels}_sum`.
fn labelled(name: &str, suffix: &str, extra: &str) -> String {
    match name.find('{') {
        Some(open) => {
            let (base, labels) = name.split_at(open);
            let inner = labels.trim_start_matches('{').trim_end_matches('}');
            if extra.is_empty() {
                format!("{base}_{suffix}{{{inner}}}")
            } else {
                format!("{base}_{suffix}{{{inner},{extra}}}")
            }
        }
        None if extra.is_empty() => format!("{name}_{suffix}"),
        None => format!("{name}_{suffix}{{{extra}}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for i in 1..BUCKETS - 1 {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(bucket_index(low), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(high), i, "high edge of bucket {i}");
            assert_eq!(bucket_bound(i), high);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantile_estimates_stay_within_one_octave() {
        for &v in &[1u64, 3, 17, 100, 1_000, 123_456] {
            let h = Histogram::new();
            for _ in 0..100 {
                h.record(v);
            }
            let snap = h.snapshot();
            for q in [0.5, 0.9, 0.99] {
                let est = snap.quantile(q);
                assert!(est >= v, "estimate below truth: {est} < {v}");
                assert!(est <= 2 * v, "estimate above 2× truth: {est} > 2·{v}");
            }
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..per {
                        h.record(t * 1000 + i % 64);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per);
        assert_eq!(snap.buckets.iter().sum::<u64>(), threads * per);
    }

    fn sample(seed: u64) -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("a_total").add(seed);
        r.counter(&format!("b_total{{x=\"{seed}\"}}")).add(1);
        r.gauge("g").set(seed as i64);
        let h = r.histogram("lat_micros");
        for i in 0..seed {
            h.record(i * 7 + seed);
        }
        r.note(
            "warn",
            if seed.is_multiple_of(2) {
                ""
            } else {
                "odd seed"
            },
        );
        r.snapshot()
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let (a, b, c) = (sample(3), sample(10), sample(4));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counter("a_total"), 17);
        assert_eq!(left.histogram("lat_micros").unwrap().count, 17);
    }

    #[test]
    fn text_exposition_has_families_buckets_and_notes() {
        let r = Registry::new();
        r.counter("requests_total{backend=\"a\"}").add(2);
        r.histogram("lat_micros").record(5);
        r.note("config_warning", "bad kernel");
        let text = r.snapshot().to_text();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total{backend=\"a\"} 2"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"7\"} 1"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_micros_count 1"), "{text}");
        assert!(text.contains("# NOTE config_warning bad kernel"), "{text}");
        // Labelled histograms keep the suffix on the base name.
        r.histogram("stage_micros{stage=\"eval\"}").record(3);
        let text = r.snapshot().to_text();
        assert!(
            text.contains("stage_micros_bucket{stage=\"eval\",le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("stage_micros_sum{stage=\"eval\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("stage_micros_count{stage=\"eval\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn registry_handles_are_stable_across_lookups() {
        let r = Registry::new();
        let c1 = r.counter("x_total");
        c1.incr();
        r.counter("x_total").add(2);
        assert_eq!(c1.get(), 3);
        assert_eq!(r.snapshot().counter("x_total"), 3);
    }
}
