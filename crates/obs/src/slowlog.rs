//! A bounded ring-buffer slow-query log.
//!
//! Queries whose total latency clears a configurable threshold are
//! captured with enough context to explain *why* they were slow: the
//! query text, the run fingerprint it evaluated over, the kernel and
//! closure counts, and the per-stage timing breakdown. The ring keeps
//! the most recent `capacity` entries; older ones fall off the front.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 128;

/// One captured slow query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowQuery {
    /// The query text as received.
    pub query: String,
    /// Fingerprint of the run it evaluated over (hex, as displayed by
    /// `rpq request runs`).
    pub fingerprint: String,
    /// The kernel mode that evaluated it.
    pub kernel: String,
    /// Closure executions by kernel: `[pairs, bits, scc]`.
    pub closures: [u64; 3],
    /// `(stage, µs)` breakdown from the query's trace.
    pub stages: Vec<(String, u64)>,
    /// End-to-end service time, µs.
    pub total_micros: u64,
}

/// The ring buffer. Recording locks a mutex, but only for queries
/// already past the threshold — the fast path is one comparison.
#[derive(Debug)]
pub struct SlowLog {
    threshold_us: u64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowQuery>>,
}

impl SlowLog {
    /// A log capturing queries at or above `threshold_us` microseconds,
    /// keeping the latest `capacity` entries.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        SlowLog {
            threshold_us,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// A log that never captures anything.
    pub fn disabled() -> Self {
        SlowLog::new(u64::MAX, 1)
    }

    /// The capture threshold, µs.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Whether a query of `total_micros` would be captured.
    pub fn qualifies(&self, total_micros: u64) -> bool {
        total_micros >= self.threshold_us
    }

    /// Capture `entry` if it qualifies; returns whether it was kept.
    /// The entry is built by the caller only after [`Self::qualifies`]
    /// says yes, so non-slow queries pay nothing.
    pub fn record(&self, entry: SlowQuery) -> bool {
        if !self.qualifies(entry.total_micros) {
            return false;
        }
        let mut ring = self.ring.lock().expect("slow log poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// The captured entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.ring
            .lock()
            .expect("slow log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow log poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> SlowQuery {
        SlowQuery {
            query: format!("q{i}"),
            fingerprint: format!("{i:016x}"),
            kernel: "auto".to_owned(),
            closures: [i, 0, 0],
            stages: vec![("eval".to_owned(), i)],
            total_micros: 1_000 + i,
        }
    }

    #[test]
    fn ring_wraps_keeping_the_newest_entries() {
        let log = SlowLog::new(1_000, 4);
        for i in 0..10 {
            assert!(log.record(entry(i)));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 4);
        let queries: Vec<&str> = entries.iter().map(|e| e.query.as_str()).collect();
        assert_eq!(queries, ["q6", "q7", "q8", "q9"]);
    }

    #[test]
    fn threshold_filters_and_disabled_never_captures() {
        let log = SlowLog::new(1_005, 8);
        for i in 0..10 {
            log.record(entry(i));
        }
        assert_eq!(log.len(), 5, "only totals ≥ 1005 µs qualify");
        let off = SlowLog::disabled();
        assert!(!off.qualifies(u64::MAX - 1));
        assert!(off.is_empty());
    }
}
