//! Microbench: per-request cost of the tracing primitives.
//!
//! ```text
//! cargo run --release -p rpq-obs --example trace_cost
//! ```
use rpq_obs::Trace;
use std::time::Instant;

fn main() {
    let n = 1_000_000u32;
    // Simulate one served request: two nested frames, five spans.
    let t0 = Instant::now();
    for _ in 0..n {
        Trace::begin();
        {
            let _p = Trace::span("plan");
        }
        Trace::begin();
        {
            let _i = Trace::span("index");
        }
        {
            let _c = Trace::span("csr");
        }
        {
            let _e = Trace::span("eval");
        }
        let inner = Trace::take();
        {
            let _l = Trace::span("store_load");
        }
        let outer = Trace::take();
        std::hint::black_box((inner, outer));
    }
    let on = t0.elapsed().as_nanos() as f64 / n as f64;

    rpq_obs::set_enabled(false);
    let t0 = Instant::now();
    for _ in 0..n {
        let _p = Trace::span("plan");
        let _e = Trace::span("eval");
    }
    let off = t0.elapsed().as_nanos() as f64 / n as f64;
    rpq_obs::set_enabled(true);
    println!("armed frame+5 spans: {on:.0} ns/request; disabled spans: {off:.1} ns");
}
