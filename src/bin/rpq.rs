//! The `rpq` command-line tool: inspect specifications, simulate labeled
//! runs and evaluate regular path queries. See `rpq help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rpq::cli::run_cli(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
