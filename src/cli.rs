//! Command-line interface logic (the `rpq` binary is a thin wrapper).
//!
//! Subcommands:
//!
//! * `spec <SPEC>` — show a specification (productions, cycles, size);
//! * `simulate <SPEC> --edges N [--seed S] [--fork CYCLE] [--out FILE]`
//!   — derive a labeled run and optionally persist it as JSON;
//! * `query <SPEC> <QUERY> [--run FILE | --edges N --seed S]
//!   [--from NODE] [--to NODE] [--limit K]` — plan and evaluate a
//!   regular path query (pairwise when both endpoints are given,
//!   all-pairs otherwise);
//! * `stats (--run FILE | <SPEC> --edges N)` — run/label statistics.
//!
//! `<SPEC>` is `fig2`, `fork`, `bioaid`, `qblast`, or a path to a JSON
//! specification produced by serde.

use rpq_core::RpqEngine;
use rpq_grammar::Specification;
use rpq_labeling::{Run, RunBuilder, RunStats};
use std::fmt::Write as _;

/// CLI failure: message for the user plus a suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Entry point: interpret `args` (without the program name) and return
/// the output text.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("spec") => cmd_spec(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError::new(format!(
            "unknown subcommand {other:?}\n{USAGE}"
        ))),
    }
}

const USAGE: &str = "\
rpq — regular path queries on workflow provenance

USAGE:
  rpq spec <SPEC>
  rpq simulate <SPEC> --edges N [--seed S] [--fork CYCLE] [--out FILE]
  rpq query <SPEC> <QUERY> [--run FILE | --edges N --seed S]
            [--from NODE] [--to NODE] [--limit K]
  rpq stats (--run FILE | <SPEC> --edges N [--seed S])

SPEC: fig2 | fork | bioaid | qblast | path to a JSON specification
NODE: module:occurrence, e.g. a:2
";

/// Resolve a spec argument.
pub fn load_spec(arg: &str) -> Result<Specification, CliError> {
    match arg {
        "fig2" => Ok(rpq_workloads::paper_examples::fig2_spec()),
        "fork" => Ok(rpq_workloads::paper_examples::fork_spec()),
        "bioaid" => Ok(rpq_workloads::bioaid_like().spec),
        "qblast" => Ok(rpq_workloads::qblast_like().spec),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read spec {path:?}: {e}")))?;
            serde_json::from_str(&text)
                .map_err(|e| CliError::new(format!("cannot parse spec {path:?}: {e}")))
        }
    }
}

fn load_run(path: &str, spec: &Specification) -> Result<Run, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read run {path:?}: {e}")))?;
    let run: Run = serde_json::from_str(&text)
        .map_err(|e| CliError::new(format!("cannot parse run {path:?}: {e}")))?;
    run.validate_against(spec)
        .map_err(|e| CliError::new(format!("run {path:?} does not match the specification: {e}")))?;
    Ok(run)
}

/// Positional arguments and `--key value` options of one subcommand.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Parse `--key value` options; returns (positional, options).
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, CliError> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::new(format!("--{key} needs a value")))?;
            options.push((key, value.as_str()));
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, options))
}

fn opt<'a>(options: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    options.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::new(format!("invalid {what}: {s:?}")))
}

fn cmd_spec(args: &[String]) -> Result<String, CliError> {
    let (positional, _) = split_args(args)?;
    let name = positional
        .first()
        .ok_or_else(|| CliError::new("spec: missing <SPEC>"))?;
    let spec = load_spec(name)?;
    Ok(rpq_grammar::display::SpecDisplay(&spec).to_string())
}

fn simulate_run(
    spec: &Specification,
    options: &[(&str, &str)],
) -> Result<Run, CliError> {
    let edges: usize = parse_num(opt(options, "edges").unwrap_or("200"), "--edges")?;
    let seed: u64 = parse_num(opt(options, "seed").unwrap_or("0"), "--seed")?;
    let builder = RunBuilder::new(spec).seed(seed).target_edges(edges);
    let builder = if let Some(fork) = opt(options, "fork") {
        let cycle: usize = parse_num(fork, "--fork")?;
        if cycle >= spec.recursion().cycles.len() {
            return Err(CliError::new(format!(
                "--fork {cycle}: specification has {} cycle(s)",
                spec.recursion().cycles.len()
            )));
        }
        let per_unfold: usize = spec.recursion().cycles[cycle]
            .edges
            .iter()
            .map(|e| spec.production(e.production).body.edges().len())
            .sum::<usize>()
            .max(1);
        builder.policy(rpq_labeling::ForkFocus::new(
            cycle,
            (edges / per_unfold).max(1) as u64,
            seed,
        ))
    } else {
        builder
    };
    builder
        .build()
        .map_err(|e| CliError::new(format!("derivation failed: {e}")))
}

fn cmd_simulate(args: &[String]) -> Result<String, CliError> {
    let (positional, options) = split_args(args)?;
    let name = positional
        .first()
        .ok_or_else(|| CliError::new("simulate: missing <SPEC>"))?;
    let spec = load_spec(name)?;
    let run = simulate_run(&spec, &options)?;
    let stats = RunStats::measure(&run);
    let mut out = String::new();
    writeln!(
        out,
        "derived run: {} nodes, {} edges, parse-tree depth {}, avg label {:.1} B",
        stats.n_nodes, stats.n_edges, stats.tree_depth, stats.label_bytes_avg
    )
    .expect("write to string");
    if let Some(path) = opt(&options, "out") {
        let json = serde_json::to_string(&run)
            .map_err(|e| CliError::new(format!("serialize failed: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| CliError::new(format!("cannot write {path:?}: {e}")))?;
        writeln!(out, "saved to {path}").expect("write to string");
    }
    Ok(out)
}

fn cmd_query(args: &[String]) -> Result<String, CliError> {
    let (positional, options) = split_args(args)?;
    let spec_name = positional
        .first()
        .ok_or_else(|| CliError::new("query: missing <SPEC>"))?;
    let query_text = positional
        .get(1)
        .ok_or_else(|| CliError::new("query: missing <QUERY>"))?;
    let spec = load_spec(spec_name)?;
    let run = match opt(&options, "run") {
        Some(path) => load_run(path, &spec)?,
        None => simulate_run(&spec, &options)?,
    };
    let engine = RpqEngine::new(&spec);
    let regex = engine
        .parse_query(query_text)
        .map_err(|e| CliError::new(format!("query parse error: {e}")))?;
    let plan = engine
        .plan(&regex)
        .map_err(|e| CliError::new(format!("planning failed: {e}")))?;

    let mut out = String::new();
    writeln!(
        out,
        "query: {query_text}\nsafe: {} (safe subqueries: {})",
        plan.is_safe(),
        plan.n_safe_subqueries()
    )
    .expect("write to string");

    let resolve = |name: &str| -> Result<rpq_labeling::NodeId, CliError> {
        run.node_by_name(&spec, name)
            .ok_or_else(|| CliError::new(format!("no node named {name:?} in the run")))
    };
    match (opt(&options, "from"), opt(&options, "to")) {
        (Some(f), Some(t)) => {
            let (u, v) = (resolve(f)?, resolve(t)?);
            writeln!(out, "{f} -R-> {t} : {}", engine.pairwise(&plan, &run, u, v))
                .expect("write to string");
        }
        (from, to) => {
            let l1: Vec<rpq_labeling::NodeId> = match from {
                Some(f) => vec![resolve(f)?],
                None => run.node_ids().collect(),
            };
            let l2: Vec<rpq_labeling::NodeId> = match to {
                Some(t) => vec![resolve(t)?],
                None => run.node_ids().collect(),
            };
            let limit: usize = parse_num(opt(&options, "limit").unwrap_or("20"), "--limit")?;
            let result = engine.all_pairs(&plan, &run, &l1, &l2);
            writeln!(out, "matches: {}", result.len()).expect("write to string");
            for (u, v) in result.iter().take(limit) {
                writeln!(
                    out,
                    "  {} -> {}",
                    run.node_name(&spec, u),
                    run.node_name(&spec, v)
                )
                .expect("write to string");
            }
            if result.len() > limit {
                writeln!(out, "  … {} more (raise --limit)", result.len() - limit)
                    .expect("write to string");
            }
        }
    }
    Ok(out)
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let (positional, options) = split_args(args)?;
    let run = match (opt(&options, "run"), positional.first()) {
        (Some(path), Some(name)) => load_run(path, &load_spec(name)?)?,
        (Some(path), None) => {
            // No spec to validate against: parse-only load.
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read run {path:?}: {e}")))?;
            serde_json::from_str(&text)
                .map_err(|e| CliError::new(format!("cannot parse run {path:?}: {e}")))?
        }
        (None, Some(name)) => {
            let spec = load_spec(name)?;
            simulate_run(&spec, &options)?
        }
        (None, None) => {
            return Err(CliError::new("stats: need --run FILE or <SPEC> --edges N"));
        }
    };
    let s = RunStats::measure(&run);
    Ok(format!(
        "nodes: {}\nedges: {}\nparse-tree depth: {}\nlabel bytes: total {} / avg {:.1} / max {}\n",
        s.n_nodes, s.n_edges, s.tree_depth, s.label_bytes_total, s.label_bytes_avg, s.label_bytes_max
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run_cli(&owned)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn spec_command_renders_builtins() {
        for s in ["fig2", "fork", "bioaid", "qblast"] {
            let out = run(&["spec", s]).unwrap();
            assert!(out.contains("productions"), "{s}: {out}");
        }
        assert!(run(&["spec", "/nonexistent.json"]).is_err());
    }

    #[test]
    fn simulate_and_query_round_trip() {
        let dir = std::env::temp_dir().join("rpq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run.json");
        let run_path = run_path.to_str().unwrap();

        let out = run(&[
            "simulate", "fig2", "--edges", "80", "--seed", "3", "--out", run_path,
        ])
        .unwrap();
        assert!(out.contains("derived run"));

        // All-pairs over the persisted run.
        let out = run(&["query", "fig2", "_* e _*", "--run", run_path]).unwrap();
        assert!(out.contains("safe: true"));
        assert!(out.contains("matches:"));

        // Pairwise between named nodes.
        let out = run(&[
            "query", "fig2", "_*", "--run", run_path, "--from", "c:1", "--to", "b:1",
        ])
        .unwrap();
        assert!(out.contains("c:1 -R-> b:1 : true"));

        // Stats over the same file.
        let out = run(&["stats", "--run", run_path]).unwrap();
        assert!(out.contains("parse-tree depth"));
    }

    #[test]
    fn query_without_run_simulates() {
        let out = run(&["query", "fork", "fork*", "--edges", "60", "--seed", "1"]).unwrap();
        assert!(out.contains("safe: true"));
    }

    #[test]
    fn mismatched_run_and_spec_are_rejected() {
        let dir = std::env::temp_dir().join("rpq_cli_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run.json");
        let run_path = run_path.to_str().unwrap();
        run(&["simulate", "bioaid", "--edges", "60", "--out", run_path]).unwrap();
        let err = run(&["query", "fig2", "_*", "--run", run_path]).unwrap_err();
        assert!(err.message.contains("does not match"), "{}", err.message);
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(run(&["query", "fig2", "((("]).is_err());
        assert!(run(&["query", "fig2", "_*", "--from", "zz:9", "--to", "b:1"])
            .unwrap_err()
            .message
            .contains("no node named"));
        assert!(run(&["simulate", "fig2", "--edges", "NaN"]).is_err());
        assert!(run(&["simulate", "fig2", "--fork", "7"])
            .unwrap_err()
            .message
            .contains("cycle"));
    }
}
