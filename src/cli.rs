//! Command-line interface logic (the `rpq` binary is a thin wrapper).
//!
//! Subcommands:
//!
//! * `spec <SPEC>` — show a specification (productions, cycles, size);
//! * `simulate <SPEC> --edges N [--seed S] [--fork CYCLE] [--out FILE]`
//!   — derive a labeled run and optionally persist it as JSON;
//! * `query <SPEC> <QUERY> [--run FILE | --edges N --seed S]
//!   [--from NODE] [--to NODE] [--limit K] [--policy P]` — prepare and
//!   evaluate a regular path query through a [`Session`] (pairwise when
//!   both endpoints are given, source/target star when one is, all-pairs
//!   otherwise);
//! * `stats (--run FILE | <SPEC> --edges N)` — run/label statistics;
//! * `store <SPEC> --dir DIR [--ingest N] [--edges M] [--seed S]
//!   [--add FILE]` — create or extend a persistent [`RunStore`]:
//!   ingest simulated runs and/or a JSON run file, deduplicate by
//!   fingerprint, and materialize warm index artifacts;
//! * `batch <QUERY> --store DIR [--threads N] [--cache C] [--policy P]
//!   [--kernel K]` — prepare `<QUERY>` once and evaluate it
//!   entry→exit over every stored run on a thread pool, reporting
//!   per-run verdicts plus store/session cache counters.
//!
//! `<SPEC>` is `fig2`, `fork`, `bioaid`, `qblast`, or a path to a JSON
//! specification produced by serde. `--policy` selects the subquery
//! evaluation policy: `cost` (cost-based, the default), `memo`
//! (always label-based) or `naive` (pure relational joins). `--kernel`
//! selects the relational kernel for joins/fixpoints: `auto`
//! (density-based, the default), `bits` (blocked bitsets) or `pairs`
//! (sorted pairs + hash joins) — the A/B switch of `rpq-relalg`.
//!
//! Every failure surfaces as [`RpqError`] — the CLI has no error type
//! of its own.

use rpq_core::{BatchOptions, QueryRequest, RpqError, Session, SubqueryPolicy};
use rpq_grammar::Specification;
use rpq_labeling::{Run, RunBuilder, RunStats};
use rpq_store::RunStore;
use std::fmt::Write as _;
use std::sync::Arc;

/// Entry point: interpret `args` (without the program name) and return
/// the output text.
pub fn run_cli(args: &[String]) -> Result<String, RpqError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("spec") => cmd_spec(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(RpqError::invalid(format!(
            "unknown subcommand {other:?}\n{USAGE}"
        ))),
    }
}

const USAGE: &str = "\
rpq — regular path queries on workflow provenance

USAGE:
  rpq spec <SPEC>
  rpq simulate <SPEC> --edges N [--seed S] [--fork CYCLE] [--out FILE]
  rpq query <SPEC> <QUERY> [--run FILE | --edges N --seed S]
            [--from NODE] [--to NODE] [--limit K] [--policy P] [--kernel K]
  rpq stats (--run FILE | <SPEC> --edges N [--seed S])
  rpq store <SPEC> --dir DIR [--ingest N] [--edges M] [--seed S] [--add FILE]
  rpq batch <QUERY> --store DIR [--threads N] [--cache C] [--policy P] [--kernel K]

SPEC:   fig2 | fork | bioaid | qblast | path to a JSON specification
NODE:   module:occurrence, e.g. a:2
POLICY: cost (default) | memo | naive
KERNEL: auto (default) | bits | pairs
";

/// Resolve a spec argument.
pub fn load_spec(arg: &str) -> Result<Specification, RpqError> {
    match arg {
        "fig2" => Ok(rpq_workloads::paper_examples::fig2_spec()),
        "fork" => Ok(rpq_workloads::paper_examples::fork_spec()),
        "bioaid" => Ok(rpq_workloads::bioaid_like().spec),
        "qblast" => Ok(rpq_workloads::qblast_like().spec),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| RpqError::io(format!("cannot read spec {path:?}"), e))?;
            serde_json::from_str(&text)
                .map_err(|e| RpqError::invalid(format!("cannot parse spec {path:?}: {e}")))
        }
    }
}

fn load_run(path: &str, spec: &Specification) -> Result<Run, RpqError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RpqError::io(format!("cannot read run {path:?}"), e))?;
    let run: Run = serde_json::from_str(&text)
        .map_err(|e| RpqError::invalid(format!("cannot parse run {path:?}: {e}")))?;
    run.validate_against(spec).map_err(|e| {
        RpqError::invalid(format!(
            "run {path:?} does not match the specification: {e}"
        ))
    })?;
    Ok(run)
}

/// Positional arguments and `--key value` options of one subcommand.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Parse `--key value` options; returns (positional, options).
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, RpqError> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| RpqError::invalid(format!("--{key} needs a value")))?;
            options.push((key, value.as_str()));
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, options))
}

fn opt<'a>(options: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    options.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, RpqError> {
    s.parse()
        .map_err(|_| RpqError::invalid(format!("invalid {what}: {s:?}")))
}

fn parse_policy(options: &[(&str, &str)]) -> Result<SubqueryPolicy, RpqError> {
    match opt(options, "policy") {
        None => Ok(SubqueryPolicy::CostBased),
        Some(name) => SubqueryPolicy::from_cli_name(name).ok_or_else(|| {
            RpqError::invalid(format!(
                "invalid --policy {name:?}: valid policies are {}",
                SubqueryPolicy::NAMES.join(", ")
            ))
        }),
    }
}

/// Apply `--kernel`, overriding the process-wide relational kernel
/// dispatch (and any `RPQ_RELALG_KERNEL` setting) for this invocation.
fn apply_kernel(options: &[(&str, &str)]) -> Result<rpq_relalg::KernelMode, RpqError> {
    let mode = match opt(options, "kernel") {
        None => rpq_relalg::kernel_mode(),
        Some(name) => rpq_relalg::KernelMode::from_name(name).ok_or_else(|| {
            RpqError::invalid(format!(
                "invalid --kernel {name:?}: valid kernels are auto, bits, pairs"
            ))
        })?,
    };
    rpq_relalg::set_kernel_mode(mode);
    Ok(mode)
}

fn cmd_spec(args: &[String]) -> Result<String, RpqError> {
    let (positional, _) = split_args(args)?;
    let name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("spec: missing <SPEC>"))?;
    let spec = load_spec(name)?;
    Ok(rpq_grammar::display::SpecDisplay(&spec).to_string())
}

fn simulate_run(spec: &Specification, options: &[(&str, &str)]) -> Result<Run, RpqError> {
    let edges: usize = parse_num(opt(options, "edges").unwrap_or("200"), "--edges")?;
    let seed: u64 = parse_num(opt(options, "seed").unwrap_or("0"), "--seed")?;
    let builder = RunBuilder::new(spec).seed(seed).target_edges(edges);
    let builder = if let Some(fork) = opt(options, "fork") {
        let cycle: usize = parse_num(fork, "--fork")?;
        if cycle >= spec.recursion().cycles.len() {
            return Err(RpqError::invalid(format!(
                "--fork {cycle}: specification has {} cycle(s)",
                spec.recursion().cycles.len()
            )));
        }
        let per_unfold: usize = spec.recursion().cycles[cycle]
            .edges
            .iter()
            .map(|e| spec.production(e.production).body.edges().len())
            .sum::<usize>()
            .max(1);
        builder.policy(rpq_labeling::ForkFocus::new(
            cycle,
            (edges / per_unfold).max(1) as u64,
            seed,
        ))
    } else {
        builder
    };
    Ok(builder.build()?)
}

fn cmd_simulate(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("simulate: missing <SPEC>"))?;
    let spec = load_spec(name)?;
    let run = simulate_run(&spec, &options)?;
    let stats = RunStats::measure(&run);
    let mut out = String::new();
    writeln!(
        out,
        "derived run: {} nodes, {} edges, parse-tree depth {}, avg label {:.1} B",
        stats.n_nodes, stats.n_edges, stats.tree_depth, stats.label_bytes_avg
    )
    .expect("write to string");
    if let Some(path) = opt(&options, "out") {
        let json = serde_json::to_string(&run)
            .map_err(|e| RpqError::invalid(format!("serialize failed: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| RpqError::io(format!("cannot write {path:?}"), e))?;
        writeln!(out, "saved to {path}").expect("write to string");
    }
    Ok(out)
}

fn cmd_query(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let spec_name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("query: missing <SPEC>"))?;
    let query_text = positional
        .get(1)
        .ok_or_else(|| RpqError::invalid("query: missing <QUERY>"))?;
    let spec = load_spec(spec_name)?;
    let run = match opt(&options, "run") {
        Some(path) => load_run(path, &spec)?,
        None => simulate_run(&spec, &options)?,
    };
    let policy = parse_policy(&options)?;
    let kernel = apply_kernel(&options)?;
    let session = Session::from_spec(spec);
    let query = session.prepare_with(query_text, policy)?;

    let mut out = String::new();
    writeln!(
        out,
        "query: {query_text}\nsafe: {} (safe subqueries: {}, DFA states: {}, policy: {}, kernel: {})",
        query.is_safe(),
        query.stats().n_safe_subqueries,
        query.stats().dfa_states,
        query.stats().policy.cli_name(),
        kernel.name(),
    )
    .expect("write to string");

    let resolve = |name: &str| -> Result<rpq_labeling::NodeId, RpqError> {
        run.node_by_name(session.spec(), name)
            .ok_or_else(|| RpqError::invalid(format!("no node named {name:?} in the run")))
    };
    match (opt(&options, "from"), opt(&options, "to")) {
        (Some(f), Some(t)) => {
            let (u, v) = (resolve(f)?, resolve(t)?);
            let outcome = session.evaluate(&query, &run, &QueryRequest::pairwise(u, v));
            writeln!(
                out,
                "{f} -R-> {t} : {}",
                outcome.as_bool().expect("pairwise")
            )
            .expect("write to string");
        }
        (from, to) => {
            let request = match (from, to) {
                (Some(f), None) => QueryRequest::source_star(resolve(f)?),
                (None, Some(t)) => QueryRequest::target_star(resolve(t)?),
                _ => {
                    let all: Vec<rpq_labeling::NodeId> = run.node_ids().collect();
                    QueryRequest::all_pairs(all.clone(), all)
                }
            };
            let limit: usize = parse_num(opt(&options, "limit").unwrap_or("20"), "--limit")?;
            let outcome = session.evaluate(&query, &run, &request);
            let result = outcome.as_pairs().expect("pair-producing request");
            writeln!(out, "matches: {}", result.len()).expect("write to string");
            for (u, v) in result.iter().take(limit) {
                writeln!(
                    out,
                    "  {} -> {}",
                    run.node_name(session.spec(), u),
                    run.node_name(session.spec(), v)
                )
                .expect("write to string");
            }
            if result.len() > limit {
                writeln!(out, "  … {} more (raise --limit)", result.len() - limit)
                    .expect("write to string");
            }
        }
    }
    Ok(out)
}

fn cmd_stats(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let run = match (opt(&options, "run"), positional.first()) {
        (Some(path), Some(name)) => load_run(path, &load_spec(name)?)?,
        (Some(path), None) => {
            // No spec to validate against: parse-only load.
            let text = std::fs::read_to_string(path)
                .map_err(|e| RpqError::io(format!("cannot read run {path:?}"), e))?;
            serde_json::from_str(&text)
                .map_err(|e| RpqError::invalid(format!("cannot parse run {path:?}: {e}")))?
        }
        (None, Some(name)) => {
            let spec = load_spec(name)?;
            simulate_run(&spec, &options)?
        }
        (None, None) => {
            return Err(RpqError::invalid(
                "stats: need --run FILE or <SPEC> --edges N",
            ));
        }
    };
    let s = RunStats::measure(&run);
    Ok(format!(
        "nodes: {}\nedges: {}\nparse-tree depth: {}\nlabel bytes: total {} / avg {:.1} / max {}\n",
        s.n_nodes,
        s.n_edges,
        s.tree_depth,
        s.label_bytes_total,
        s.label_bytes_avg,
        s.label_bytes_max
    ))
}

fn cmd_store(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let spec_name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("store: missing <SPEC>"))?;
    let dir = opt(&options, "dir").ok_or_else(|| RpqError::invalid("store: --dir DIR required"))?;
    let spec = load_spec(spec_name)?;
    let store = RunStore::open_or_create(dir, Arc::new(spec))?;

    let mut out = String::new();
    if let Some(n) = opt(&options, "ingest") {
        let n: usize = parse_num(n, "--ingest")?;
        let edges: usize = parse_num(opt(&options, "edges").unwrap_or("200"), "--edges")?;
        let seed: u64 = parse_num(opt(&options, "seed").unwrap_or("0"), "--seed")?;
        let mut fresh = 0;
        let mut deduped = 0;
        for run in rpq_workloads::runs::corpus(store.spec(), n, edges, seed)? {
            if store.ingest(&run)?.deduplicated {
                deduped += 1;
            } else {
                fresh += 1;
            }
        }
        writeln!(
            out,
            "ingested {fresh} simulated run(s) (~{edges} edges, seed {seed}), {deduped} deduplicated"
        )
        .expect("write to string");
    }
    if let Some(path) = opt(&options, "add") {
        let ingested = store.ingest_json_file(path)?;
        writeln!(
            out,
            "added {path} as {}{}",
            ingested.id,
            if ingested.deduplicated {
                " (deduplicated)"
            } else {
                ""
            }
        )
        .expect("write to string");
    }
    // Ship the store warm: every run gets persisted index artifacts so
    // the next process (or `rpq batch`) reloads instead of rebuilding.
    let materialized = store.materialize_artifacts()?;
    if materialized > 0 {
        writeln!(
            out,
            "materialized index artifacts for {materialized} run(s)"
        )
        .expect("write to string");
    }
    writeln!(out, "store {dir}: {} run(s), spec {spec_name}", store.len())
        .expect("write to string");
    Ok(out)
}

fn cmd_batch(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let query_text = positional
        .first()
        .ok_or_else(|| RpqError::invalid("batch: missing <QUERY>"))?;
    let dir =
        opt(&options, "store").ok_or_else(|| RpqError::invalid("batch: --store DIR required"))?;
    let store = RunStore::open(dir)?;
    if store.is_empty() {
        return Err(RpqError::invalid(format!(
            "store {dir} holds no runs; ingest some with `rpq store ... --ingest N`"
        )));
    }
    let threads: usize = parse_num(opt(&options, "threads").unwrap_or("0"), "--threads")?;
    let policy = parse_policy(&options)?;
    let kernel = apply_kernel(&options)?;
    // The session shares the store's specification, so prepared plans
    // and stored runs always agree. `--cache` bounds both the
    // session's per-run index caches and the store's in-memory
    // run/artifact caches — bounding only one side would leave the
    // other retaining the full corpus.
    let session = Session::new(store.spec_arc());
    let (store, session) = match opt(&options, "cache") {
        Some(c) => {
            let capacity = parse_num(c, "--cache")?;
            (
                store.with_cache_capacity(capacity),
                session.with_cache_capacity(capacity),
            )
        }
        None => (store, session),
    };
    let query = session.prepare_with(query_text, policy)?;
    let outcome = session.evaluate_batch(
        &query,
        &store,
        &QueryRequest::entry_exit(),
        &BatchOptions::threads(threads),
    );

    let mut out = String::new();
    writeln!(
        out,
        "batch: {query_text} entry→exit over {} run(s) ({} thread(s), policy: {}, kernel: {})",
        outcome.items.len(),
        outcome.threads,
        query.stats().policy.cli_name(),
        kernel.name(),
    )
    .expect("write to string");
    let mut matched = 0usize;
    let ids = store.ids();
    for (i, item) in outcome.items.iter().enumerate() {
        let id = ids[i];
        match &item.outcome {
            Ok(o) => {
                let hit = o.as_bool().expect("entry-exit is pairwise");
                matched += usize::from(hit);
                let edges = store.run(id).map(|r| r.n_edges()).unwrap_or(0);
                writeln!(out, "  {id}  ({edges} edges)  {hit}").expect("write to string");
            }
            Err(e) => writeln!(out, "  {id}  error: {e}").expect("write to string"),
        }
    }
    let store_stats = store.stats();
    let batch_stats = outcome.stats;
    writeln!(
        out,
        "matched {matched}/{} in {:.1} ms wall",
        outcome.items.len(),
        outcome.wall_secs * 1e3
    )
    .expect("write to string");
    writeln!(
        out,
        "store: tag reloads {}, csr reloads {}, tag rebuilds {}, csr rebuilds {}",
        store_stats.tag_reloads,
        store_stats.csr_reloads,
        store_stats.tag_rebuilds,
        store_stats.csr_rebuilds
    )
    .expect("write to string");
    writeln!(
        out,
        "session: index hits {}, misses {}; csr hits {}, misses {}; evictions {}",
        batch_stats.index_hits,
        batch_stats.index_misses,
        batch_stats.csr_hits,
        batch_stats.csr_misses,
        batch_stats.index_evictions + batch_stats.csr_evictions
    )
    .expect("write to string");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, RpqError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run_cli(&owned)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn spec_command_renders_builtins() {
        for s in ["fig2", "fork", "bioaid", "qblast"] {
            let out = run(&["spec", s]).unwrap();
            assert!(out.contains("productions"), "{s}: {out}");
        }
        assert!(run(&["spec", "/nonexistent.json"]).is_err());
    }

    #[test]
    fn simulate_and_query_round_trip() {
        let dir = std::env::temp_dir().join("rpq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run.json");
        let run_path = run_path.to_str().unwrap();

        let out = run(&[
            "simulate", "fig2", "--edges", "80", "--seed", "3", "--out", run_path,
        ])
        .unwrap();
        assert!(out.contains("derived run"));

        // All-pairs over the persisted run.
        let out = run(&["query", "fig2", "_* e _*", "--run", run_path]).unwrap();
        assert!(out.contains("safe: true"));
        assert!(out.contains("matches:"));

        // Pairwise between named nodes.
        let out = run(&[
            "query", "fig2", "_*", "--run", run_path, "--from", "c:1", "--to", "b:1",
        ])
        .unwrap();
        assert!(out.contains("c:1 -R-> b:1 : true"));

        // Source star from a named node.
        let out = run(&["query", "fig2", "_*", "--run", run_path, "--from", "c:1"]).unwrap();
        assert!(out.contains("matches:"));

        // Stats over the same file.
        let out = run(&["stats", "--run", run_path]).unwrap();
        assert!(out.contains("parse-tree depth"));
    }

    #[test]
    fn query_without_run_simulates() {
        let out = run(&["query", "fork", "fork*", "--edges", "60", "--seed", "1"]).unwrap();
        assert!(out.contains("safe: true"));
    }

    #[test]
    fn policies_are_selectable_and_agree() {
        let mut outputs = Vec::new();
        for policy in ["cost", "memo", "naive"] {
            let out = run(&[
                "query", "fig2", "_* a _*", "--edges", "80", "--seed", "3", "--policy", policy,
            ])
            .unwrap();
            let matches = out
                .lines()
                .find(|l| l.starts_with("matches:"))
                .expect("matches line")
                .to_owned();
            outputs.push(matches);
        }
        // All three policies answer identically.
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);

        let err = run(&["query", "fig2", "_*", "--policy", "fastest"]).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("cost") && message.contains("memo") && message.contains("naive"),
            "error must list valid policies: {message}"
        );
    }

    #[test]
    fn kernels_are_selectable_and_agree() {
        let mut outputs = Vec::new();
        for kernel in ["bits", "pairs", "auto"] {
            let out = run(&[
                "query", "fig2", "_* a _*", "--edges", "80", "--seed", "3", "--policy", "naive",
                "--kernel", kernel,
            ])
            .unwrap();
            assert!(out.contains(&format!("kernel: {kernel}")), "{out}");
            let matches = out
                .lines()
                .find(|l| l.starts_with("matches:"))
                .expect("matches line")
                .to_owned();
            outputs.push(matches);
        }
        // Both kernels (and the dispatcher) answer identically.
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);

        let err = run(&["query", "fig2", "_*", "--kernel", "quantum"]).unwrap_err();
        assert!(err.to_string().contains("bits"), "{err}");
    }

    #[test]
    fn store_and_batch_round_trip() {
        let dir = std::env::temp_dir()
            .join("rpq_cli_store")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        let dir = dir.to_str().unwrap().to_owned();

        // Create a store with 4 simulated runs (artifacts materialized).
        let out = run(&[
            "store", "fig2", "--dir", &dir, "--ingest", "4", "--edges", "80", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("ingested 4 simulated run(s)"), "{out}");
        assert!(out.contains("materialized index artifacts for 4"), "{out}");
        assert!(out.contains("4 run(s)"), "{out}");

        // Re-running the same ingest deduplicates everything.
        let out = run(&[
            "store", "fig2", "--dir", &dir, "--ingest", "4", "--edges", "80", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("ingested 0 simulated run(s)"), "{out}");
        assert!(out.contains("4 deduplicated"), "{out}");

        // Adding a JSON run file ingests it too.
        let run_file = format!("{dir}/extra.json");
        run(&[
            "simulate", "fig2", "--edges", "500", "--seed", "9", "--out", &run_file,
        ])
        .unwrap();
        let out = run(&["store", "fig2", "--dir", &dir, "--add", &run_file]).unwrap();
        assert!(out.contains("added"), "{out}");
        assert!(out.contains("5 run(s)"), "{out}");

        // A safe query decodes labels only: the batch never touches
        // the store's artifacts (no reloads, no rebuilds).
        let out = run(&["batch", "_* e _*", "--store", &dir, "--threads", "2"]).unwrap();
        assert!(out.contains("over 5 run(s)"), "{out}");
        assert!(out.contains("matched"), "{out}");
        assert!(out.contains("tag reloads 0"), "{out}");
        assert!(out.contains("tag rebuilds 0"), "{out}");

        // A composite query (with a bounded cache) consumes the warm
        // store: reload counters move, rebuilds stay at zero.
        let out = run(&[
            "batch",
            "_* a _*",
            "--store",
            &dir,
            "--threads",
            "4",
            "--cache",
            "2",
            "--policy",
            "naive",
        ])
        .unwrap();
        assert!(out.contains("policy: naive"), "{out}");
        assert!(out.contains("tag reloads 5"), "{out}");
        assert!(out.contains("tag rebuilds 0"), "{out}");

        // Usage errors.
        assert!(run(&["batch", "_*"]).is_err());
        assert!(run(&["store", "fig2"]).is_err());
        let err = run(&["batch", "_*", "--store", "/nonexistent-store"]).unwrap_err();
        assert!(matches!(err, RpqError::Io { .. }), "{err:?}");
        // A store built for one spec refuses another.
        let err = run(&["store", "fork", "--dir", &dir]).unwrap_err();
        assert!(err.to_string().contains("different specification"), "{err}");
    }

    #[test]
    fn mismatched_run_and_spec_are_rejected() {
        let dir = std::env::temp_dir().join("rpq_cli_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run.json");
        let run_path = run_path.to_str().unwrap();
        run(&["simulate", "bioaid", "--edges", "60", "--out", run_path]).unwrap();
        let err = run(&["query", "fig2", "_*", "--run", run_path]).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(run(&["query", "fig2", "((("]).is_err());
        assert!(
            run(&["query", "fig2", "_*", "--from", "zz:9", "--to", "b:1"])
                .unwrap_err()
                .to_string()
                .contains("no node named")
        );
        assert!(run(&["simulate", "fig2", "--edges", "NaN"]).is_err());
        assert!(run(&["simulate", "fig2", "--fork", "7"])
            .unwrap_err()
            .to_string()
            .contains("cycle"));
    }

    #[test]
    fn error_variants_round_trip_through_display() {
        // Parse errors surface as RpqError::Parse...
        let err = run(&["query", "fig2", "((("]).unwrap_err();
        assert!(matches!(err, RpqError::Parse(_)), "{err:?}");
        // ...I/O errors as RpqError::Io with context...
        let err = run(&["spec", "/definitely/not/here.json"]).unwrap_err();
        assert!(matches!(err, RpqError::Io { .. }), "{err:?}");
        // ...and usage problems as RpqError::Invalid.
        let err = run(&["stats"]).unwrap_err();
        assert!(matches!(err, RpqError::Invalid(_)), "{err:?}");
    }
}
