//! Command-line interface logic (the `rpq` binary is a thin wrapper).
//!
//! Subcommands:
//!
//! * `spec <SPEC>` — show a specification (productions, cycles, size);
//! * `simulate <SPEC> --edges N [--seed S] [--fork CYCLE] [--out FILE]
//!   [--stream B]` — derive a labeled run and optionally persist it as
//!   JSON; `--stream B` splits the derivation into a base prefix plus
//!   `B` event batches (written next to `--out`) for replay through
//!   the live-ingestion path;
//! * `query <SPEC> <QUERY> [--run FILE | --edges N --seed S]
//!   [--from NODE] [--to NODE] [--limit K] [--policy P]` — prepare and
//!   evaluate a regular path query through a [`Session`] (pairwise when
//!   both endpoints are given, source/target star when one is, all-pairs
//!   otherwise);
//! * `stats (--run FILE | <SPEC> --edges N)` — run/label statistics;
//! * `store <SPEC> --dir DIR [--ingest N] [--edges M] [--seed S]
//!   [--add FILE] [--open rID --events FILE]` — create or extend a
//!   persistent [`RunStore`]: ingest simulated runs and/or a JSON run
//!   file, deduplicate by fingerprint, and materialize warm index
//!   artifacts; `--open rID --events FILE` appends an event batch to a
//!   stored run through the live-ingestion path (indexes maintained
//!   incrementally, catalog epoch bumped);
//! * `batch <QUERY> --store DIR [--threads N] [--cache C] [--policy P]
//!   [--kernel K]` — prepare `<QUERY>` once and evaluate it
//!   entry→exit over every stored run on a thread pool, reporting
//!   per-run verdicts plus store/session cache counters;
//! * `serve <SPEC> --store DIR [--addr A] [--workers N] [--queue Q]
//!   [--cache C] [--policy P] [--kernel K]` — serve the store over TCP
//!   (`rpq-serve`): one shared warm session, a bounded worker pool,
//!   graceful overload refusals, clean SIGTERM/ctrl-c shutdown;
//! * `router --backend HOST:PORT [--backend ...]` — the fault-tolerant
//!   front tier (`rpq-router`): consistent-hashes run fingerprints
//!   across the backends with R-way replication, health-checks them
//!   (ping probes, ejection, half-open recovery), fails queries over
//!   to the next replica with backoff, keeps replication flowing
//!   backend-to-backend, and degrades to `Unavailable` frames instead
//!   of hangs when a run's whole replica set is down;
//! * `request <VERB> --addr HOST:PORT ...` — the client side: `query`
//!   (every evaluation mode), `append` (grow an open run over the
//!   wire), `stats`, `runs`, `ping`, `shutdown`;
//! * `watch <QUERY> --addr HOST:PORT [--index I | --fp HEX]
//!   [--mode MODE] [--max-deltas N]` — stand a query up over an open
//!   run (protocol-v3 `Subscribe`) and print each pushed delta — only
//!   *newly derived* answers — as appends land on the server; exits
//!   after `--max-deltas N` pushes, on SIGTERM/ctrl-c, or when the
//!   server goes away.
//!
//! `<SPEC>` is `fig2`, `fork`, `bioaid`, `qblast`, or a path to a JSON
//! specification produced by serde. `--policy` selects the subquery
//! evaluation policy: `cost` (cost-based, the default), `memo`
//! (always label-based) or `naive` (pure relational joins). `--kernel`
//! selects the relational kernel for joins/fixpoints: `auto`
//! (density-based, the default), `bits` (blocked bitsets), `pairs`
//! (sorted pairs + hash joins) or `scc` (Tarjan condensation for every
//! transitive closure) — the A/B switch of `rpq-relalg`. `--strategy`
//! selects the evaluation strategy: `auto` (cost model picks, the
//! default), `lazy` (on-the-fly DFA×graph product search) or
//! `materialized` (the relational pipeline) — the A/B switch of
//! `rpq_core::lazy`.
//!
//! Every failure surfaces as [`RpqError`] — the CLI has no error type
//! of its own.

use rpq_core::{BatchOptions, EvalStrategy, QueryRequest, RpqError, Session, SubqueryPolicy};
use rpq_grammar::Specification;
use rpq_labeling::{EventBatch, Run, RunBuilder, RunStats};
use rpq_router::{Router, RouterConfig};
use rpq_serve::protocol::{QuerySpec, RunAddr, WireMode, WireResult};
use rpq_serve::{ServeClient, ServeConfig, Server};
use rpq_store::RunStore;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Entry point: interpret `args` (without the program name) and return
/// the output text.
pub fn run_cli(args: &[String]) -> Result<String, RpqError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("spec") => cmd_spec(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("router") => cmd_router(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(RpqError::invalid(format!(
            "unknown subcommand {other:?}\n{USAGE}"
        ))),
    }
}

const USAGE: &str = "\
rpq — regular path queries on workflow provenance

USAGE:
  rpq spec <SPEC>
  rpq simulate <SPEC> --edges N [--seed S] [--fork CYCLE] [--out FILE] [--stream B]
  rpq query <SPEC> <QUERY> [--run FILE | --edges N --seed S]
            [--from NODE] [--to NODE] [--limit K] [--policy P] [--kernel K]
            [--strategy S]
  rpq stats (--run FILE | <SPEC> --edges N [--seed S])
  rpq store <SPEC> --dir DIR [--ingest N] [--edges M] [--seed S] [--add FILE]
            [--open rID --events FILE] [--remove FP|rID] [--gc]
  rpq batch <QUERY> --store DIR [--threads N] [--cache C] [--policy P] [--kernel K]
            [--strategy S]
  rpq serve <SPEC> --store DIR [--addr HOST:PORT] [--workers N] [--queue Q]
            [--cache C] [--policy P] [--kernel K] [--strategy S]
            [--idle-timeout SECS] [--deadline SECS] [--chunk ENTRIES]
            [--slow-ms MS] [--metrics-addr HOST:PORT]
  rpq router --backend HOST:PORT [--backend HOST:PORT ...] [--addr HOST:PORT]
            [--replicas R] [--workers N] [--queue Q] [--deadline-ms MS]
            [--probe-ms MS] [--sync-ms MS|off] [--cooldown-ms MS] [--eject-after K]
            [--metrics-addr HOST:PORT]
  rpq request query <QUERY> --addr HOST:PORT [--index I | --fp HEX]
            [--mode MODE] [--from U] [--to V] [--policy P] [--strategy S]
            [--limit K]
  rpq request append --addr HOST:PORT --events FILE [--index I | --fp HEX]
  rpq request metrics --addr HOST:PORT [--text]
  rpq request (stats | runs | ping | shutdown) --addr HOST:PORT
  rpq watch <QUERY> --addr HOST:PORT [--index I | --fp HEX] [--mode MODE]
            [--from U] [--to V] [--policy P] [--strategy S] [--limit K]
            [--max-deltas N]

SPEC:     fig2 | fork | bioaid | qblast | path to a JSON specification
NODE:     module:occurrence, e.g. a:2 (numeric node indexes for `request`)
POLICY:   cost (default) | memo | naive
KERNEL:   auto (default) | bits | pairs | scc
STRATEGY: auto (default) | lazy | materialized
MODE:     pairwise | entry-exit | all-pairs | source-star | target-star | reachable
";

/// Resolve a spec argument.
pub fn load_spec(arg: &str) -> Result<Specification, RpqError> {
    match arg {
        "fig2" => Ok(rpq_workloads::paper_examples::fig2_spec()),
        "fork" => Ok(rpq_workloads::paper_examples::fork_spec()),
        "bioaid" => Ok(rpq_workloads::bioaid_like().spec),
        "qblast" => Ok(rpq_workloads::qblast_like().spec),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| RpqError::io(format!("cannot read spec {path:?}"), e))?;
            serde_json::from_str(&text)
                .map_err(|e| RpqError::invalid(format!("cannot parse spec {path:?}: {e}")))
        }
    }
}

fn load_run(path: &str, spec: &Specification) -> Result<Run, RpqError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RpqError::io(format!("cannot read run {path:?}"), e))?;
    let run: Run = serde_json::from_str(&text)
        .map_err(|e| RpqError::invalid(format!("cannot parse run {path:?}: {e}")))?;
    run.validate_against(spec).map_err(|e| {
        RpqError::invalid(format!(
            "run {path:?} does not match the specification: {e}"
        ))
    })?;
    Ok(run)
}

/// Positional arguments and `--key value` options of one subcommand.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Options that are bare flags (no value token follows them).
const BOOL_FLAGS: [&str; 2] = ["gc", "text"];

/// Parse `--key value` options; returns (positional, options). Keys
/// listed in [`BOOL_FLAGS`] consume no value and parse as `"true"`.
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, RpqError> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                options.push((key, "true"));
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| RpqError::invalid(format!("--{key} needs a value")))?;
            options.push((key, value.as_str()));
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, options))
}

fn opt<'a>(options: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    options.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, RpqError> {
    s.parse()
        .map_err(|_| RpqError::invalid(format!("invalid {what}: {s:?}")))
}

fn parse_policy(options: &[(&str, &str)]) -> Result<SubqueryPolicy, RpqError> {
    match opt(options, "policy") {
        None => Ok(SubqueryPolicy::CostBased),
        Some(name) => SubqueryPolicy::from_cli_name(name).ok_or_else(|| {
            RpqError::invalid(format!(
                "invalid --policy {name:?}: valid policies are {}",
                SubqueryPolicy::NAMES.join(", ")
            ))
        }),
    }
}

/// Apply `--kernel`, overriding the process-wide relational kernel
/// dispatch (and any `RPQ_RELALG_KERNEL` setting) for this invocation.
fn apply_kernel(options: &[(&str, &str)]) -> Result<rpq_relalg::KernelMode, RpqError> {
    let mode = match opt(options, "kernel") {
        None => rpq_relalg::kernel_mode(),
        Some(name) => rpq_relalg::KernelMode::from_name(name).ok_or_else(|| {
            RpqError::invalid(format!(
                "invalid --kernel {name:?}: valid kernels are auto, bits, pairs, scc"
            ))
        })?,
    };
    rpq_relalg::set_kernel_mode(mode);
    Ok(mode)
}

/// Parse `--strategy` without touching process state; absent means the
/// process-wide default (`RPQ_EVAL_STRATEGY` or `auto`). `query`
/// threads the parsed mode through `evaluate_with_strategy` and
/// `serve` through `ServeConfig`, so concurrent invocations (the test
/// harness) never race on the global.
fn parse_strategy(options: &[(&str, &str)]) -> Result<EvalStrategy, RpqError> {
    match opt(options, "strategy") {
        None => Ok(rpq_core::eval_strategy()),
        Some(name) => EvalStrategy::from_name(name).ok_or_else(|| {
            RpqError::invalid(format!(
                "invalid --strategy {name:?}: valid strategies are {}",
                EvalStrategy::NAMES.join(", ")
            ))
        }),
    }
}

/// Apply `--strategy` process-wide (for `batch`, whose executor calls
/// `Session::evaluate` on a pool and has no per-call override).
fn apply_strategy(options: &[(&str, &str)]) -> Result<EvalStrategy, RpqError> {
    let mode = parse_strategy(options)?;
    if opt(options, "strategy").is_some() {
        rpq_core::set_eval_strategy(mode);
    }
    Ok(mode)
}

/// Open an existing run store for querying (`batch` / `serve`),
/// turning every failure mode — missing directory, missing or corrupt
/// catalog — into one clear [`RpqError::Io`] naming the directory and
/// the remedy, instead of a panic or a bare lower-layer message.
fn open_store(dir: &str) -> Result<RunStore, RpqError> {
    let catalog = std::path::Path::new(dir).join("catalog.json");
    if !catalog.exists() {
        return Err(RpqError::io(
            format!("cannot open run store at {dir}"),
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no catalog.json there — create the store first with \
                 `rpq store <SPEC> --dir DIR --ingest N`",
            ),
        ));
    }
    RunStore::open(dir).map_err(|e| match e {
        io @ RpqError::Io { .. } => io,
        other => RpqError::io(
            format!("cannot open run store at {dir}"),
            std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        ),
    })
}

fn cmd_spec(args: &[String]) -> Result<String, RpqError> {
    let (positional, _) = split_args(args)?;
    let name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("spec: missing <SPEC>"))?;
    let spec = load_spec(name)?;
    Ok(rpq_grammar::display::SpecDisplay(&spec).to_string())
}

fn simulate_run(spec: &Specification, options: &[(&str, &str)]) -> Result<Run, RpqError> {
    let edges: usize = parse_num(opt(options, "edges").unwrap_or("200"), "--edges")?;
    let seed: u64 = parse_num(opt(options, "seed").unwrap_or("0"), "--seed")?;
    let builder = RunBuilder::new(spec).seed(seed).target_edges(edges);
    let builder = if let Some(fork) = opt(options, "fork") {
        let cycle: usize = parse_num(fork, "--fork")?;
        if cycle >= spec.recursion().cycles.len() {
            return Err(RpqError::invalid(format!(
                "--fork {cycle}: specification has {} cycle(s)",
                spec.recursion().cycles.len()
            )));
        }
        let per_unfold: usize = spec.recursion().cycles[cycle]
            .edges
            .iter()
            .map(|e| spec.production(e.production).body.edges().len())
            .sum::<usize>()
            .max(1);
        builder.policy(rpq_labeling::ForkFocus::new(
            cycle,
            (edges / per_unfold).max(1) as u64,
            seed,
        ))
    } else {
        builder
    };
    Ok(builder.build()?)
}

fn cmd_simulate(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("simulate: missing <SPEC>"))?;
    let spec = load_spec(name)?;
    let run = simulate_run(&spec, &options)?;
    let stats = RunStats::measure(&run);
    let mut out = String::new();
    writeln!(
        out,
        "derived run: {} nodes, {} edges, parse-tree depth {}, avg label {:.1} B",
        stats.n_nodes, stats.n_edges, stats.tree_depth, stats.label_bytes_avg
    )
    .expect("write to string");
    if let Some(b) = opt(&options, "stream") {
        // Split the derivation into a base prefix plus replayable event
        // batches: the base goes to --out, batch k to
        // `<out stem>.events-k.json`, ready for `rpq store --open
        // --events` or `rpq request append`.
        let n_batches: usize = parse_num(b, "--stream")?;
        let path = opt(&options, "out")
            .ok_or_else(|| RpqError::invalid("simulate: --stream needs --out FILE"))?;
        let (base, batches) =
            rpq_workloads::runs::event_stream(&run, n_batches).map_err(RpqError::invalid)?;
        write_json(path, &base)?;
        writeln!(
            out,
            "streamed: base {} node(s)/{} edge(s) saved to {path}",
            base.n_nodes(),
            base.n_edges()
        )
        .expect("write to string");
        for (k, batch) in batches.iter().enumerate() {
            let batch_path = events_path(path, k + 1);
            write_json(&batch_path, batch)?;
            writeln!(
                out,
                "  batch {}: {} node(s), {} edge(s) saved to {batch_path}",
                k + 1,
                batch.nodes.len(),
                batch.edges.len()
            )
            .expect("write to string");
        }
        return Ok(out);
    }
    if let Some(path) = opt(&options, "out") {
        write_json(path, &run)?;
        writeln!(out, "saved to {path}").expect("write to string");
    }
    Ok(out)
}

/// Serialize `value` as JSON to `path`.
fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), RpqError> {
    let json = serde_json::to_string(value)
        .map_err(|e| RpqError::invalid(format!("serialize failed: {e}")))?;
    std::fs::write(path, json).map_err(|e| RpqError::io(format!("cannot write {path:?}"), e))
}

/// Sibling path for event batch `k` of a streamed simulation:
/// `run.json` → `run.events-k.json`.
fn events_path(out: &str, k: usize) -> String {
    match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.events-{k}.json"),
        None => format!("{out}.events-{k}"),
    }
}

/// Parse an `EventBatch` JSON file (as written by `simulate --stream`).
fn load_events(path: &str) -> Result<EventBatch, RpqError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RpqError::io(format!("cannot read events {path:?}"), e))?;
    serde_json::from_str(&text)
        .map_err(|e| RpqError::invalid(format!("cannot parse events {path:?}: {e}")))
}

fn cmd_query(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let spec_name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("query: missing <SPEC>"))?;
    let query_text = positional
        .get(1)
        .ok_or_else(|| RpqError::invalid("query: missing <QUERY>"))?;
    let spec = load_spec(spec_name)?;
    let run = match opt(&options, "run") {
        Some(path) => load_run(path, &spec)?,
        None => simulate_run(&spec, &options)?,
    };
    let policy = parse_policy(&options)?;
    let kernel = apply_kernel(&options)?;
    let strategy = parse_strategy(&options)?;
    let session = Session::from_spec(spec);
    let query = session.prepare_with(query_text, policy)?;

    let mut out = String::new();
    writeln!(
        out,
        "query: {query_text}\nsafe: {} (safe subqueries: {}, DFA states: {}, policy: {}, \
         kernel: {}, strategy: {})",
        query.is_safe(),
        query.stats().n_safe_subqueries,
        query.stats().dfa_states,
        query.stats().policy.cli_name(),
        kernel.name(),
        strategy.name(),
    )
    .expect("write to string");

    // Which closure algorithm(s) actually ran, and which strategy
    // answered (the header modes are intent; these are fact).
    let closure_note = |out: &mut String, meta: &rpq_core::EvalMeta| {
        if meta.closures.total() > 0 {
            writeln!(out, "closures: {}", meta.closures.summary()).expect("write to string");
        }
        if meta.condensations.total() > 0 {
            writeln!(
                out,
                "condensations: {} computed, {} reused",
                meta.condensations.computed, meta.condensations.reused
            )
            .expect("write to string");
        }
        if meta.strategy == EvalStrategy::Lazy {
            writeln!(
                out,
                "lazy product search: {} product state(s) expanded",
                meta.product_states
            )
            .expect("write to string");
        }
    };
    let resolve = |name: &str| -> Result<rpq_labeling::NodeId, RpqError> {
        run.node_by_name(session.spec(), name)
            .ok_or_else(|| RpqError::invalid(format!("no node named {name:?} in the run")))
    };
    match (opt(&options, "from"), opt(&options, "to")) {
        (Some(f), Some(t)) => {
            let (u, v) = (resolve(f)?, resolve(t)?);
            let outcome = session.evaluate_with_strategy(
                &query,
                &run,
                &QueryRequest::pairwise(u, v),
                strategy,
            );
            writeln!(
                out,
                "{f} -R-> {t} : {}",
                outcome.as_bool().expect("pairwise")
            )
            .expect("write to string");
            closure_note(&mut out, &outcome.meta);
        }
        (from, to) => {
            let request = match (from, to) {
                (Some(f), None) => QueryRequest::source_star(resolve(f)?),
                (None, Some(t)) => QueryRequest::target_star(resolve(t)?),
                _ => {
                    let all: Vec<rpq_labeling::NodeId> = run.node_ids().collect();
                    QueryRequest::all_pairs(all.clone(), all)
                }
            };
            let limit: usize = parse_num(opt(&options, "limit").unwrap_or("20"), "--limit")?;
            let outcome = session.evaluate_with_strategy(&query, &run, &request, strategy);
            let result = outcome.as_pairs().expect("pair-producing request");
            writeln!(out, "matches: {}", result.len()).expect("write to string");
            for (u, v) in result.iter().take(limit) {
                writeln!(
                    out,
                    "  {} -> {}",
                    run.node_name(session.spec(), u),
                    run.node_name(session.spec(), v)
                )
                .expect("write to string");
            }
            if result.len() > limit {
                writeln!(out, "  … {} more (raise --limit)", result.len() - limit)
                    .expect("write to string");
            }
            closure_note(&mut out, &outcome.meta);
        }
    }
    Ok(out)
}

fn cmd_stats(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let run = match (opt(&options, "run"), positional.first()) {
        (Some(path), Some(name)) => load_run(path, &load_spec(name)?)?,
        (Some(path), None) => {
            // No spec to validate against: parse-only load.
            let text = std::fs::read_to_string(path)
                .map_err(|e| RpqError::io(format!("cannot read run {path:?}"), e))?;
            serde_json::from_str(&text)
                .map_err(|e| RpqError::invalid(format!("cannot parse run {path:?}: {e}")))?
        }
        (None, Some(name)) => {
            let spec = load_spec(name)?;
            simulate_run(&spec, &options)?
        }
        (None, None) => {
            return Err(RpqError::invalid(
                "stats: need --run FILE or <SPEC> --edges N",
            ));
        }
    };
    let s = RunStats::measure(&run);
    Ok(format!(
        "nodes: {}\nedges: {}\nparse-tree depth: {}\nlabel bytes: total {} / avg {:.1} / max {}\n",
        s.n_nodes,
        s.n_edges,
        s.tree_depth,
        s.label_bytes_total,
        s.label_bytes_avg,
        s.label_bytes_max
    ))
}

fn cmd_store(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let spec_name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("store: missing <SPEC>"))?;
    let dir = opt(&options, "dir").ok_or_else(|| RpqError::invalid("store: --dir DIR required"))?;
    let spec = load_spec(spec_name)?;
    // Arc'd because the live-append path (`--open`) hands out shared
    // `OpenRun` handles; every other operation derefs through it.
    let store = Arc::new(RunStore::open_or_create(dir, Arc::new(spec))?);

    let mut out = String::new();
    if let Some(n) = opt(&options, "ingest") {
        let n: usize = parse_num(n, "--ingest")?;
        let edges: usize = parse_num(opt(&options, "edges").unwrap_or("200"), "--edges")?;
        let seed: u64 = parse_num(opt(&options, "seed").unwrap_or("0"), "--seed")?;
        let mut fresh = 0;
        let mut deduped = 0;
        for run in rpq_workloads::runs::corpus(store.spec(), n, edges, seed)? {
            if store.ingest(&run)?.deduplicated {
                deduped += 1;
            } else {
                fresh += 1;
            }
        }
        writeln!(
            out,
            "ingested {fresh} simulated run(s) (~{edges} edges, seed {seed}), {deduped} deduplicated"
        )
        .expect("write to string");
    }
    if let Some(path) = opt(&options, "add") {
        let ingested = store.ingest_json_file(path)?;
        writeln!(
            out,
            "added {path} as {}{}",
            ingested.id,
            if ingested.deduplicated {
                " (deduplicated)"
            } else {
                ""
            }
        )
        .expect("write to string");
    }
    match (opt(&options, "open"), opt(&options, "events")) {
        (Some(target), Some(path)) => {
            let id = target
                .strip_prefix('r')
                .ok_or_else(|| RpqError::invalid(format!("--open {target:?}: expected r<ID>")))?;
            let id: u64 = parse_num(id, "--open run id")?;
            let batch = load_events(path)?;
            let open = store.open_run(rpq_store::RunId(id))?;
            let receipt = open.append_events(&batch)?;
            writeln!(
                out,
                "appended {path} to {target}: seq {}, epoch {}, +{} node(s)/+{} edge(s) \
                 ({}), now {} node(s)/{} edge(s), fp {:016x}{:016x}",
                receipt.seq,
                receipt.epoch,
                receipt.new_nodes,
                receipt.new_edges,
                if receipt.rebuilt {
                    "full rebuild"
                } else {
                    "delta maintenance"
                },
                receipt.n_nodes,
                receipt.n_edges,
                receipt.fingerprint.0,
                receipt.fingerprint.1
            )
            .expect("write to string");
        }
        (None, None) => {}
        _ => {
            return Err(RpqError::invalid(
                "store: --open rID and --events FILE go together",
            ))
        }
    }
    if let Some(target) = opt(&options, "remove") {
        let removed = if let Some(id) = target.strip_prefix('r') {
            let id: u64 = parse_num(id, "--remove run id")?;
            store.remove_run_by_id(rpq_store::RunId(id))?
        } else {
            let fp = parse_fingerprint(target)?;
            store.remove_run(fp)?.is_some()
        };
        writeln!(
            out,
            "{}",
            if removed {
                format!("removed {target}")
            } else {
                format!("no stored run matches {target}")
            }
        )
        .expect("write to string");
    }
    if opt(&options, "gc").is_some() {
        let pruned = store.prune_orphans()?;
        writeln!(out, "gc: pruned {pruned} orphaned file(s)").expect("write to string");
    }
    // Ship the store warm: every run gets persisted index artifacts so
    // the next process (or `rpq batch`) reloads instead of rebuilding.
    let materialized = store.materialize_artifacts()?;
    if materialized > 0 {
        writeln!(
            out,
            "materialized index artifacts for {materialized} run(s)"
        )
        .expect("write to string");
    }
    writeln!(out, "store {dir}: {} run(s), spec {spec_name}", store.len())
        .expect("write to string");
    Ok(out)
}

fn cmd_batch(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let query_text = positional
        .first()
        .ok_or_else(|| RpqError::invalid("batch: missing <QUERY>"))?;
    let dir =
        opt(&options, "store").ok_or_else(|| RpqError::invalid("batch: --store DIR required"))?;
    let store = open_store(dir)?;
    if store.is_empty() {
        return Err(RpqError::invalid(format!(
            "store {dir} holds no runs; ingest some with `rpq store ... --ingest N`"
        )));
    }
    let threads: usize = parse_num(opt(&options, "threads").unwrap_or("0"), "--threads")?;
    let policy = parse_policy(&options)?;
    let kernel = apply_kernel(&options)?;
    let strategy = apply_strategy(&options)?;
    // The session shares the store's specification, so prepared plans
    // and stored runs always agree. `--cache` bounds both the
    // session's per-run index caches and the store's in-memory
    // run/artifact caches — bounding only one side would leave the
    // other retaining the full corpus.
    let session = Session::new(store.spec_arc());
    let (store, session) = match opt(&options, "cache") {
        Some(c) => {
            let capacity = parse_num(c, "--cache")?;
            (
                store.with_cache_capacity(capacity),
                session.with_cache_capacity(capacity),
            )
        }
        None => (store, session),
    };
    let query = session.prepare_with(query_text, policy)?;
    let outcome = session.evaluate_batch(
        &query,
        &store,
        &QueryRequest::entry_exit(),
        &BatchOptions::threads(threads),
    );

    let mut out = String::new();
    writeln!(
        out,
        "batch: {query_text} entry→exit over {} run(s) ({} thread(s), policy: {}, kernel: {}, \
         strategy: {})",
        outcome.items.len(),
        outcome.threads,
        query.stats().policy.cli_name(),
        kernel.name(),
        strategy.name(),
    )
    .expect("write to string");
    let mut matched = 0usize;
    let ids = store.ids();
    for (i, item) in outcome.items.iter().enumerate() {
        let id = ids[i];
        match &item.outcome {
            Ok(o) => {
                let hit = o.as_bool().expect("entry-exit is pairwise");
                matched += usize::from(hit);
                let edges = store.run(id).map(|r| r.n_edges()).unwrap_or(0);
                writeln!(out, "  {id}  ({edges} edges)  {hit}").expect("write to string");
            }
            Err(e) => writeln!(out, "  {id}  error: {e}").expect("write to string"),
        }
    }
    let store_stats = store.stats();
    let batch_stats = outcome.stats;
    writeln!(
        out,
        "matched {matched}/{} in {:.1} ms wall",
        outcome.items.len(),
        outcome.wall_secs * 1e3
    )
    .expect("write to string");
    writeln!(
        out,
        "store: tag reloads {}, csr reloads {}, tag rebuilds {}, csr rebuilds {}, \
         plan reloads {}, plan rebuilds {}",
        store_stats.tag_reloads,
        store_stats.csr_reloads,
        store_stats.tag_rebuilds,
        store_stats.csr_rebuilds,
        store_stats.plan_reloads,
        store_stats.plan_rebuilds
    )
    .expect("write to string");
    writeln!(
        out,
        "session: index hits {}, misses {}; csr hits {}, misses {}; evictions {}",
        batch_stats.index_hits,
        batch_stats.index_misses,
        batch_stats.csr_hits,
        batch_stats.csr_misses,
        batch_stats.index_evictions + batch_stats.csr_evictions
    )
    .expect("write to string");
    Ok(out)
}

/// Parse a 32-hex-digit run fingerprint (`hi` then `lo`, as printed by
/// `rpq request runs`).
fn parse_fingerprint(s: &str) -> Result<(u64, u64), RpqError> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(RpqError::invalid(format!(
            "invalid fingerprint {s:?}: expected 32 hex digits (or r<ID> for a store id)"
        )));
    }
    let hi = u64::from_str_radix(&s[..16], 16).expect("validated hex");
    let lo = u64::from_str_radix(&s[16..], 16).expect("validated hex");
    Ok((hi, lo))
}

fn cmd_serve(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let spec_name = positional
        .first()
        .ok_or_else(|| RpqError::invalid("serve: missing <SPEC>"))?;
    let dir =
        opt(&options, "store").ok_or_else(|| RpqError::invalid("serve: --store DIR required"))?;
    let spec = load_spec(spec_name)?;
    let store = open_store(dir)?;
    if *store.spec() != spec {
        return Err(RpqError::invalid(format!(
            "store {dir} was built for a different specification than {spec_name}"
        )));
    }
    if store.is_empty() {
        return Err(RpqError::invalid(format!(
            "store {dir} holds no runs; ingest some with `rpq store ... --ingest N`"
        )));
    }
    let kernel = apply_kernel(&options)?;
    let strategy = parse_strategy(&options)?;
    let config = ServeConfig {
        addr: opt(&options, "addr").unwrap_or("127.0.0.1:0").to_owned(),
        workers: parse_num(opt(&options, "workers").unwrap_or("0"), "--workers")?,
        queue: parse_num(opt(&options, "queue").unwrap_or("64"), "--queue")?,
        cache: match opt(&options, "cache") {
            Some(c) => Some(parse_num(c, "--cache")?),
            None => None,
        },
        policy: parse_policy(&options)?,
        strategy,
        idle_timeout: Duration::from_secs(parse_num(
            opt(&options, "idle-timeout").unwrap_or("60"),
            "--idle-timeout",
        )?),
        deadline: Duration::from_secs(parse_num(
            opt(&options, "deadline").unwrap_or("30"),
            "--deadline",
        )?),
        chunk_entries: parse_num(opt(&options, "chunk").unwrap_or("65536"), "--chunk")?,
        slow_ms: match opt(&options, "slow-ms") {
            Some(ms) => Some(parse_num(ms, "--slow-ms")?),
            None => None,
        },
        metrics_addr: opt(&options, "metrics-addr").map(str::to_owned),
        observe: true,
    };
    let server = Server::bind(store, &config)?;
    let warmed = server.warm()?;
    let addr = server.local_addr()?;
    // Announced immediately (run_cli's return value only prints after
    // shutdown): harnesses scrape this line for the ephemeral port.
    println!(
        "rpq-serve listening on {addr} ({} worker(s), queue {}, {warmed} run(s) warm, \
         policy {}, kernel {}, strategy {})",
        server.workers(),
        config.queue,
        config.policy.cli_name(),
        kernel.name(),
        config.strategy.name(),
    );
    if let Some(maddr) = server.metrics_local_addr() {
        println!("metrics listening on {maddr}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = server.run(Some(rpq_serve::signals::install_termination_flag()));
    Ok(format!(
        "shutdown: served {} request(s) over {} connection(s), {} overloaded, {} error(s), \
         latency p50 {}µs p99 {}µs\n",
        report.requests,
        report.accepted,
        report.overloaded,
        report.request_errors,
        report.p50_us,
        report.p99_us
    ))
}

fn cmd_router(args: &[String]) -> Result<String, RpqError> {
    let (_positional, options) = split_args(args)?;
    let backends: Vec<std::net::SocketAddr> = options
        .iter()
        .filter(|(k, _)| *k == "backend")
        .map(|&(_, v)| {
            v.parse().map_err(|_| {
                RpqError::invalid(format!("invalid --backend address {v:?} (want HOST:PORT)"))
            })
        })
        .collect::<Result<_, _>>()?;
    if backends.is_empty() {
        return Err(RpqError::invalid(
            "router: at least one --backend HOST:PORT required",
        ));
    }
    let config = RouterConfig {
        addr: opt(&options, "addr").unwrap_or("127.0.0.1:0").to_owned(),
        replication: parse_num(opt(&options, "replicas").unwrap_or("2"), "--replicas")?,
        workers: parse_num(opt(&options, "workers").unwrap_or("0"), "--workers")?,
        queue: parse_num(opt(&options, "queue").unwrap_or("64"), "--queue")?,
        deadline: Duration::from_millis(parse_num(
            opt(&options, "deadline-ms").unwrap_or("5000"),
            "--deadline-ms",
        )?),
        eject_after: parse_num(opt(&options, "eject-after").unwrap_or("3"), "--eject-after")?,
        cooldown: Duration::from_millis(parse_num(
            opt(&options, "cooldown-ms").unwrap_or("500"),
            "--cooldown-ms",
        )?),
        probe_interval: Duration::from_millis(parse_num(
            opt(&options, "probe-ms").unwrap_or("250"),
            "--probe-ms",
        )?),
        sync_interval: match opt(&options, "sync-ms") {
            Some("off") => None,
            Some(ms) => Some(Duration::from_millis(parse_num(ms, "--sync-ms")?)),
            None => Some(Duration::from_millis(500)),
        },
        metrics_addr: opt(&options, "metrics-addr").map(str::to_owned),
        backends,
        ..RouterConfig::default()
    };
    let router = Router::bind(&config)?;
    let addr = router.local_addr()?;
    // Announced immediately (run_cli's return value only prints after
    // shutdown): harnesses scrape this line for the ephemeral port.
    println!(
        "rpq-router listening on {addr} ({} worker(s), {} backend(s), replication {}, \
         probe {}ms, sync {})",
        router.workers(),
        config.backends.len(),
        config.replication.min(config.backends.len()),
        config.probe_interval.as_millis(),
        match config.sync_interval {
            Some(d) => format!("{}ms", d.as_millis()),
            None => "off".to_owned(),
        },
    );
    if let Some(maddr) = router.metrics_local_addr() {
        println!("metrics listening on {maddr}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = router.run(Some(rpq_serve::signals::install_termination_flag()));
    Ok(format!(
        "shutdown: routed {} request(s) over {} connection(s), {} overloaded, \
         {} failover(s) ({} retry backoff(s)), {} unavailable, {} run(s) replicated\n",
        report.requests,
        report.accepted,
        report.overloaded,
        report.failovers,
        report.retries,
        report.unavailable,
        report.synced_runs
    ))
}

fn cmd_request(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let verb = positional.first().ok_or_else(|| {
        RpqError::invalid(
            "request: missing verb (query | append | stats | metrics | runs | ping | shutdown)",
        )
    })?;
    if ![
        "ping", "shutdown", "runs", "stats", "metrics", "query", "append",
    ]
    .contains(verb)
    {
        return Err(RpqError::invalid(format!(
            "unknown request verb {verb:?} \
             (query | append | stats | metrics | runs | ping | shutdown)"
        )));
    }
    let addr = opt(&options, "addr")
        .ok_or_else(|| RpqError::invalid("request: --addr HOST:PORT required"))?;
    let mut client = ServeClient::connect(addr)?;
    match *verb {
        "ping" => {
            client.ping()?;
            Ok(format!("pong from {addr}\n"))
        }
        "shutdown" => {
            client.shutdown_server()?;
            Ok(format!("server at {addr} acknowledged shutdown\n"))
        }
        "runs" => {
            let runs = client.runs()?;
            let mut out = String::new();
            writeln!(out, "{} stored run(s) at {addr}:", runs.len()).expect("write to string");
            for r in runs {
                writeln!(
                    out,
                    "  r{}  fp {:016x}{:016x}  {} node(s), {} edge(s)",
                    r.id, r.fp_hi, r.fp_lo, r.n_nodes, r.n_edges
                )
                .expect("write to string");
            }
            Ok(out)
        }
        "stats" => {
            let s = client.stats()?;
            Ok(format!(
                "server {addr}: {} run(s) stored\n\
                 service: {} connection(s), {} request(s), {} overloaded, {} error(s)\n\
                 session: plan {}h/{}m, index {}h/{}m, csr {}h/{}m, {} eviction(s)\n\
                 store:   tag reloads {}, csr reloads {}, tag rebuilds {}, csr rebuilds {}\n\
                 plans:   {} reload(s) from disk, {} cold rebuild(s)\n\
                 live:    epoch {}, {} append(s) ({} forced rebuild(s)), {} subscription(s)\n\
                 closures: pairs {}, bits {}, scc {} (condensations: {} computed, {} reused)\n\
                 strategy: lazy {}, materialized {}, {} product state(s) expanded\n\
                 retries: {} reconnect/failover backoff(s), {} config warning(s)\n",
                s.store_runs,
                s.accepted,
                s.requests,
                s.overloaded,
                s.request_errors,
                s.plan_hits,
                s.plan_misses,
                s.index_hits,
                s.index_misses,
                s.csr_hits,
                s.csr_misses,
                s.session_evictions,
                s.tag_reloads,
                s.csr_reloads,
                s.tag_rebuilds,
                s.csr_rebuilds,
                s.plan_reloads,
                s.plan_rebuilds,
                s.store_epoch,
                s.appends,
                s.append_rebuilds,
                s.subscriptions,
                s.closures_pairs,
                s.closures_bits,
                s.closures_scc,
                s.condensations_computed,
                s.condensations_reused,
                s.strategy_lazy,
                s.strategy_materialized,
                s.lazy_expansions,
                s.retries,
                s.config_warnings,
            ))
        }
        "metrics" => {
            let reply = client.metrics()?;
            if opt(&options, "text").is_some() {
                return Ok(reply.to_snapshot().to_text());
            }
            let mut out = String::new();
            writeln!(
                out,
                "metrics @ {addr}: {} counter(s), {} gauge(s), {} histogram(s), {} slow quer(ies)",
                reply.counters.len(),
                reply.gauges.len(),
                reply.histograms.len(),
                reply.slow.len()
            )
            .expect("write to string");
            for (name, value) in &reply.counters {
                writeln!(out, "  {name} {value}").expect("write to string");
            }
            for (name, value) in &reply.gauges {
                writeln!(out, "  {name} {value}").expect("write to string");
            }
            for (name, hist) in &reply.histograms {
                let h = hist.to_snapshot();
                writeln!(
                    out,
                    "  {name} count={} mean={:.0} p50={} p90={} p99={}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99()
                )
                .expect("write to string");
            }
            for (key, text) in &reply.notes {
                writeln!(out, "  note {key}: {text}").expect("write to string");
            }
            for sq in &reply.slow {
                let stages: Vec<String> = sq
                    .stages
                    .iter()
                    .map(|(name, us)| format!("{name}={us}µs"))
                    .collect();
                writeln!(
                    out,
                    "  slow {}µs [{}] fp {} {:?} ({})",
                    sq.total_micros,
                    sq.kernel,
                    sq.fingerprint,
                    sq.query,
                    stages.join(" ")
                )
                .expect("write to string");
            }
            Ok(out)
        }
        "query" => {
            let query = positional
                .get(1)
                .ok_or_else(|| RpqError::invalid("request query: missing <QUERY>"))?;
            cmd_request_query(&mut client, addr, query, &options)
        }
        "append" => {
            let path = opt(&options, "events")
                .ok_or_else(|| RpqError::invalid("request append: --events FILE required"))?;
            let batch = load_events(path)?;
            let run = parse_run_addr(&options)?;
            let receipt = client.append(run, batch)?;
            Ok(format!(
                "appended {path} @ {addr}: seq {}, epoch {}, +{} node(s)/+{} edge(s) ({}), \
                 now {} node(s)/{} edge(s), fp {:016x}{:016x}\n",
                receipt.seq,
                receipt.epoch,
                receipt.new_nodes,
                receipt.new_edges,
                if receipt.rebuilt != 0 {
                    "full rebuild"
                } else {
                    "delta maintenance"
                },
                receipt.n_nodes,
                receipt.n_edges,
                receipt.fp_hi,
                receipt.fp_lo
            ))
        }
        _ => unreachable!("verb validated above"),
    }
}

/// Parse `--fp HEX | --index I` into a run address (index 0 default).
fn parse_run_addr(options: &[(&str, &str)]) -> Result<RunAddr, RpqError> {
    match (opt(options, "fp"), opt(options, "index")) {
        (Some(fp), None) => {
            let (hi, lo) = parse_fingerprint(fp)?;
            Ok(RunAddr::Fingerprint(hi, lo))
        }
        (None, index) => Ok(RunAddr::Index(parse_num(index.unwrap_or("0"), "--index")?)),
        (Some(_), Some(_)) => Err(RpqError::invalid("--fp and --index are mutually exclusive")),
    }
}

/// Parse `--mode`/`--from`/`--to` into a wire evaluation mode.
fn parse_wire_mode(options: &[(&str, &str)]) -> Result<WireMode, RpqError> {
    let from = match opt(options, "from") {
        Some(s) => Some(parse_num::<u32>(s, "--from node index")?),
        None => None,
    };
    let to = match opt(options, "to") {
        Some(s) => Some(parse_num::<u32>(s, "--to node index")?),
        None => None,
    };
    let need = |side: Option<u32>, flag: &str, mode: &str| {
        side.ok_or_else(|| RpqError::invalid(format!("--mode {mode} needs {flag}")))
    };
    match opt(options, "mode") {
        // Inferred mode mirrors `rpq query`: both endpoints → pairwise,
        // one → the star selection, none → entry→exit.
        None => Ok(match (from, to) {
            (Some(u), Some(v)) => WireMode::Pairwise(u, v),
            (Some(u), None) => WireMode::SourceStar(u),
            (None, Some(v)) => WireMode::TargetStar(v),
            (None, None) => WireMode::EntryExit,
        }),
        Some("pairwise") => Ok(WireMode::Pairwise(
            need(from, "--from", "pairwise")?,
            need(to, "--to", "pairwise")?,
        )),
        Some("entry-exit") => Ok(WireMode::EntryExit),
        Some("source-star") => Ok(WireMode::SourceStar(need(from, "--from", "source-star")?)),
        Some("target-star") => Ok(WireMode::TargetStar(need(to, "--to", "target-star")?)),
        Some("reachable") => Ok(WireMode::Reachable(need(from, "--from", "reachable")?)),
        // The node universe lives server-side; the symbolic mode ships
        // no id lists and needs no inventory round trip.
        Some("all-pairs") => Ok(WireMode::AllPairsFull),
        Some(other) => Err(RpqError::invalid(format!(
            "invalid --mode {other:?} (pairwise | entry-exit | all-pairs | source-star | \
             target-star | reachable)"
        ))),
    }
}

fn cmd_request_query(
    client: &mut ServeClient,
    addr: &str,
    query: &str,
    options: &[(&str, &str)],
) -> Result<String, RpqError> {
    let outcome = client.query(QuerySpec {
        query: query.to_owned(),
        policy: opt(options, "policy").unwrap_or("").to_owned(),
        strategy: opt(options, "strategy").unwrap_or("").to_owned(),
        run: parse_run_addr(options)?,
        // The CLI is interactive: ask for the per-stage breakdown
        // (bulk clients leave it off — it costs wire bytes per reply).
        stages: true,
        mode: parse_wire_mode(options)?,
    })?;
    let limit: usize = parse_num(opt(options, "limit").unwrap_or("10"), "--limit")?;
    let mut out = String::new();
    writeln!(
        out,
        "query: {query} @ {addr}\nplan: {}, strategy: {}, index cache: {}, kernel: {}, \
         {} node(s) touched, {} µs server-side",
        outcome.plan_kind,
        outcome.strategy,
        outcome.index_cache,
        outcome.kernel,
        outcome.nodes_touched,
        outcome.micros
    )
    .expect("write to string");
    if outcome.product_states > 0 {
        writeln!(
            out,
            "lazy product search: {} product state(s) expanded",
            outcome.product_states
        )
        .expect("write to string");
    }
    if outcome.closure_pairs + outcome.closure_bits + outcome.closure_scc > 0 {
        writeln!(
            out,
            "closures: pairs:{} bits:{} scc:{}",
            outcome.closure_pairs, outcome.closure_bits, outcome.closure_scc
        )
        .expect("write to string");
    }
    if outcome.condensations_computed + outcome.condensations_reused > 0 {
        writeln!(
            out,
            "condensations: {} computed, {} reused",
            outcome.condensations_computed, outcome.condensations_reused
        )
        .expect("write to string");
    }
    if !outcome.stages.is_empty() {
        let parts: Vec<String> = outcome
            .stages
            .iter()
            .map(|(name, us)| format!("{name}={us}µs"))
            .collect();
        writeln!(out, "stages: {}", parts.join(" ")).expect("write to string");
    }
    match &outcome.result {
        WireResult::Bool(hit) => writeln!(out, "verdict: {hit}").expect("write to string"),
        WireResult::Pairs(pairs) => {
            writeln!(out, "matches: {}", pairs.len()).expect("write to string");
            for (u, v) in pairs.iter().take(limit) {
                writeln!(out, "  {u} -> {v}").expect("write to string");
            }
            if pairs.len() > limit {
                writeln!(out, "  … {} more (raise --limit)", pairs.len() - limit)
                    .expect("write to string");
            }
        }
        WireResult::Nodes(nodes) => {
            writeln!(out, "reachable: {}", nodes.len()).expect("write to string");
            for n in nodes.iter().take(limit) {
                writeln!(out, "  {n}").expect("write to string");
            }
            if nodes.len() > limit {
                writeln!(out, "  … {} more (raise --limit)", nodes.len() - limit)
                    .expect("write to string");
            }
        }
    }
    Ok(out)
}

fn cmd_watch(args: &[String]) -> Result<String, RpqError> {
    let (positional, options) = split_args(args)?;
    let query = positional
        .first()
        .ok_or_else(|| RpqError::invalid("watch: missing <QUERY>"))?;
    let addr = opt(&options, "addr")
        .ok_or_else(|| RpqError::invalid("watch: --addr HOST:PORT required"))?;
    let limit: usize = parse_num(opt(&options, "limit").unwrap_or("10"), "--limit")?;
    let max_deltas: u64 = match opt(&options, "max-deltas") {
        Some(s) => parse_num(s, "--max-deltas")?,
        None => u64::MAX,
    };
    let mut client = ServeClient::connect(addr)?;
    let (seq, initial) = client.subscribe(QuerySpec {
        query: (*query).to_owned(),
        policy: opt(&options, "policy").unwrap_or("").to_owned(),
        strategy: opt(&options, "strategy").unwrap_or("").to_owned(),
        run: parse_run_addr(&options)?,
        stages: false,
        mode: parse_wire_mode(&options)?,
    })?;
    // Streaming output: each line prints (and flushes) as it happens —
    // run_cli's return value only appears when the watch ends, and
    // harnesses scrape the first line to know the watch is standing.
    println!(
        "watching {query} @ {addr} from seq {seq}; baseline {}",
        summarize_result(&initial)
    );
    flush_stdout();
    let stop = rpq_serve::signals::install_termination_flag();
    let mut received: u64 = 0;
    while received < max_deltas {
        if stop.load(std::sync::atomic::Ordering::Relaxed) {
            break;
        }
        if let Some((seq, added)) = client.next_delta(Duration::from_millis(300))? {
            received += 1;
            println!("delta seq {seq}: {}", render_added(&added, limit));
            flush_stdout();
        }
    }
    client.unsubscribe()?;
    Ok(format!("watch: {received} delta(s) received\n"))
}

fn flush_stdout() {
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
}

/// One-line shape of a full wire result (the subscription baseline).
fn summarize_result(result: &WireResult) -> String {
    match result {
        WireResult::Bool(hit) => format!("verdict {hit}"),
        WireResult::Pairs(pairs) => format!("{} pair(s)", pairs.len()),
        WireResult::Nodes(nodes) => format!("{} node(s)", nodes.len()),
    }
}

/// One-line rendering of a pushed delta (newly derived answers only).
fn render_added(added: &WireResult, limit: usize) -> String {
    let list = |shown: Vec<String>, total: usize| {
        let mut s = shown.join(" ");
        if total > limit {
            write!(s, " … {} more (raise --limit)", total - limit).expect("write to string");
        }
        s
    };
    match added {
        WireResult::Bool(hit) => format!("verdict flipped to {hit}"),
        WireResult::Pairs(pairs) => format!(
            "+{} pair(s): {}",
            pairs.len(),
            list(
                pairs
                    .iter()
                    .take(limit)
                    .map(|(u, v)| format!("{u}->{v}"))
                    .collect(),
                pairs.len()
            )
        ),
        WireResult::Nodes(nodes) => format!(
            "+{} node(s): {}",
            nodes.len(),
            list(
                nodes.iter().take(limit).map(u32::to_string).collect(),
                nodes.len()
            )
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, RpqError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run_cli(&owned)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn spec_command_renders_builtins() {
        for s in ["fig2", "fork", "bioaid", "qblast"] {
            let out = run(&["spec", s]).unwrap();
            assert!(out.contains("productions"), "{s}: {out}");
        }
        assert!(run(&["spec", "/nonexistent.json"]).is_err());
    }

    #[test]
    fn simulate_and_query_round_trip() {
        let dir = std::env::temp_dir().join("rpq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run.json");
        let run_path = run_path.to_str().unwrap();

        let out = run(&[
            "simulate", "fig2", "--edges", "80", "--seed", "3", "--out", run_path,
        ])
        .unwrap();
        assert!(out.contains("derived run"));

        // All-pairs over the persisted run.
        let out = run(&["query", "fig2", "_* e _*", "--run", run_path]).unwrap();
        assert!(out.contains("safe: true"));
        assert!(out.contains("matches:"));

        // Pairwise between named nodes.
        let out = run(&[
            "query", "fig2", "_*", "--run", run_path, "--from", "c:1", "--to", "b:1",
        ])
        .unwrap();
        assert!(out.contains("c:1 -R-> b:1 : true"));

        // Source star from a named node.
        let out = run(&["query", "fig2", "_*", "--run", run_path, "--from", "c:1"]).unwrap();
        assert!(out.contains("matches:"));

        // Stats over the same file.
        let out = run(&["stats", "--run", run_path]).unwrap();
        assert!(out.contains("parse-tree depth"));
    }

    #[test]
    fn query_without_run_simulates() {
        let out = run(&["query", "fork", "fork*", "--edges", "60", "--seed", "1"]).unwrap();
        assert!(out.contains("safe: true"));
    }

    #[test]
    fn policies_are_selectable_and_agree() {
        let mut outputs = Vec::new();
        for policy in ["cost", "memo", "naive"] {
            let out = run(&[
                "query", "fig2", "_* a _*", "--edges", "80", "--seed", "3", "--policy", policy,
            ])
            .unwrap();
            let matches = out
                .lines()
                .find(|l| l.starts_with("matches:"))
                .expect("matches line")
                .to_owned();
            outputs.push(matches);
        }
        // All three policies answer identically.
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);

        let err = run(&["query", "fig2", "_*", "--policy", "fastest"]).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("cost") && message.contains("memo") && message.contains("naive"),
            "error must list valid policies: {message}"
        );
    }

    #[test]
    fn kernels_are_selectable_and_agree() {
        let mut outputs = Vec::new();
        for kernel in ["bits", "pairs", "scc", "auto"] {
            // Forced materialized: the closure accounting below is a
            // relational-path fact (auto may route small runs to the
            // lazy product engine, which closes nothing).
            let out = run(&[
                "query",
                "fig2",
                "_* a _*",
                "--edges",
                "80",
                "--seed",
                "3",
                "--policy",
                "naive",
                "--kernel",
                kernel,
                "--strategy",
                "materialized",
            ])
            .unwrap();
            assert!(out.contains(&format!("kernel: {kernel}")), "{out}");
            // The naive plan closes over `_*`, so the executed closure
            // algorithm surfaces; under a forced mode it matches the
            // forced kernel.
            let closures = out
                .lines()
                .find(|l| l.starts_with("closures:"))
                .expect("closures line")
                .to_owned();
            if let "bits" | "pairs" | "scc" = kernel {
                // The forced algorithm ran (nonzero) and no other did.
                for other in ["pairs", "bits", "scc"] {
                    let ran_none = closures.contains(&format!("{other}:0"));
                    assert_eq!(ran_none, other != kernel, "{kernel}: {closures}");
                }
            }
            let matches = out
                .lines()
                .find(|l| l.starts_with("matches:"))
                .expect("matches line")
                .to_owned();
            outputs.push(matches);
        }
        // Every kernel (and the dispatcher) answers identically.
        assert!(outputs.iter().all(|o| o == &outputs[0]), "{outputs:?}");

        let err = run(&["query", "fig2", "_*", "--kernel", "quantum"]).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("bits") && message.contains("scc"),
            "{message}"
        );
    }

    #[test]
    fn strategies_are_selectable_and_agree() {
        let mut outputs = Vec::new();
        for strategy in ["auto", "lazy", "materialized"] {
            let out = run(&[
                "query",
                "fig2",
                "_* a _*",
                "--edges",
                "80",
                "--seed",
                "3",
                "--policy",
                "naive",
                "--from",
                "c:1",
                "--strategy",
                strategy,
            ])
            .unwrap();
            assert!(out.contains(&format!("strategy: {strategy}")), "{out}");
            if strategy == "lazy" {
                // The resolved strategy surfaces as fact, with its
                // product-state accounting.
                assert!(out.contains("lazy product search:"), "{out}");
            }
            let matches = out
                .lines()
                .find(|l| l.starts_with("matches:"))
                .expect("matches line")
                .to_owned();
            outputs.push(matches);
        }
        // Both engines (and the cost-model dispatcher) answer
        // identically.
        assert!(outputs.iter().all(|o| o == &outputs[0]), "{outputs:?}");

        let err = run(&["query", "fig2", "_*", "--strategy", "eager"]).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("lazy") && message.contains("materialized"),
            "error must list valid strategies: {message}"
        );
    }

    #[test]
    fn store_and_batch_round_trip() {
        let dir = std::env::temp_dir()
            .join("rpq_cli_store")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        let dir = dir.to_str().unwrap().to_owned();

        // Create a store with 4 simulated runs (artifacts materialized).
        let out = run(&[
            "store", "fig2", "--dir", &dir, "--ingest", "4", "--edges", "80", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("ingested 4 simulated run(s)"), "{out}");
        assert!(out.contains("materialized index artifacts for 4"), "{out}");
        assert!(out.contains("4 run(s)"), "{out}");

        // Re-running the same ingest deduplicates everything.
        let out = run(&[
            "store", "fig2", "--dir", &dir, "--ingest", "4", "--edges", "80", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("ingested 0 simulated run(s)"), "{out}");
        assert!(out.contains("4 deduplicated"), "{out}");

        // Adding a JSON run file ingests it too.
        let run_file = format!("{dir}/extra.json");
        run(&[
            "simulate", "fig2", "--edges", "500", "--seed", "9", "--out", &run_file,
        ])
        .unwrap();
        let out = run(&["store", "fig2", "--dir", &dir, "--add", &run_file]).unwrap();
        assert!(out.contains("added"), "{out}");
        assert!(out.contains("5 run(s)"), "{out}");

        // A safe query decodes labels only: the batch never touches
        // the store's artifacts (no reloads, no rebuilds). Forced
        // materialized — under a forced-lazy environment the batch
        // would legitimately pull warm CSR arenas even for safe plans.
        let out = run(&[
            "batch",
            "_* e _*",
            "--store",
            &dir,
            "--threads",
            "2",
            "--strategy",
            "materialized",
        ])
        .unwrap();
        assert!(out.contains("over 5 run(s)"), "{out}");
        assert!(out.contains("matched"), "{out}");
        assert!(out.contains("tag reloads 0"), "{out}");
        assert!(out.contains("tag rebuilds 0"), "{out}");

        // A composite query (with a bounded cache) consumes the warm
        // store: reload counters move, rebuilds stay at zero.
        // Forced materialized: the tag-reload accounting is a
        // relational-path fact (the lazy engine never fetches the tag
        // index).
        let out = run(&[
            "batch",
            "_* a _*",
            "--store",
            &dir,
            "--threads",
            "4",
            "--cache",
            "2",
            "--policy",
            "naive",
            "--strategy",
            "materialized",
        ])
        .unwrap();
        assert!(out.contains("policy: naive"), "{out}");
        assert!(out.contains("strategy: materialized"), "{out}");
        assert!(out.contains("tag reloads 5"), "{out}");
        assert!(out.contains("tag rebuilds 0"), "{out}");

        // Usage errors.
        assert!(run(&["batch", "_*"]).is_err());
        assert!(run(&["store", "fig2"]).is_err());
        let err = run(&["batch", "_*", "--store", "/nonexistent-store"]).unwrap_err();
        assert!(matches!(err, RpqError::Io { .. }), "{err:?}");
        // A store built for one spec refuses another.
        let err = run(&["store", "fork", "--dir", &dir]).unwrap_err();
        assert!(err.to_string().contains("different specification"), "{err}");
    }

    #[test]
    fn store_gc_and_remove_flags_work() {
        let dir = std::env::temp_dir()
            .join("rpq_cli_gc")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_owned();
        run(&[
            "store", "fig2", "--dir", &dir_s, "--ingest", "3", "--edges", "70", "--seed", "2",
        ])
        .unwrap();

        // Remove by store id.
        let out = run(&["store", "fig2", "--dir", &dir_s, "--remove", "r1"]).unwrap();
        assert!(out.contains("removed r1"), "{out}");
        assert!(out.contains("2 run(s)"), "{out}");
        // Removing it again reports the miss without failing.
        let out = run(&["store", "fig2", "--dir", &dir_s, "--remove", "r1"]).unwrap();
        assert!(out.contains("no stored run matches r1"), "{out}");

        // Plant an orphan; --gc prunes it and live artifacts survive.
        std::fs::write(dir.join("index").join("tag-77.bin"), b"junk").unwrap();
        let out = run(&["store", "fig2", "--dir", &dir_s, "--gc"]).unwrap();
        assert!(out.contains("pruned 1 orphaned file(s)"), "{out}");
        let out = run(&["batch", "_* e _*", "--store", &dir_s]).unwrap();
        assert!(out.contains("over 2 run(s)"), "{out}");

        // Bad --remove arguments are clear errors.
        let err = run(&["store", "fig2", "--dir", &dir_s, "--remove", "zz"]).unwrap_err();
        assert!(err.to_string().contains("32 hex digits"), "{err}");
    }

    #[test]
    fn missing_or_corrupt_stores_are_clear_io_errors() {
        // Missing directory: batch and serve both say what to do.
        for args in [
            vec!["batch", "_*", "--store", "/nonexistent-store"],
            vec!["serve", "fig2", "--store", "/nonexistent-store"],
        ] {
            let err = run(&args).unwrap_err();
            assert!(matches!(err, RpqError::Io { .. }), "{err:?}");
            let message = err.to_string();
            assert!(message.contains("cannot open run store"), "{message}");
            assert!(message.contains("rpq store"), "{message}");
        }

        // Corrupt catalog: still RpqError::Io, still naming the store.
        let dir = std::env::temp_dir()
            .join("rpq_cli_corrupt")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("catalog.json"), b"{not json").unwrap();
        std::fs::write(dir.join("spec.json"), b"{}").unwrap();
        let dir_s = dir.to_str().unwrap();
        for args in [
            vec!["batch", "_*", "--store", dir_s],
            vec!["serve", "fig2", "--store", dir_s],
        ] {
            let err = run(&args).unwrap_err();
            assert!(matches!(err, RpqError::Io { .. }), "{err:?}");
            assert!(err.to_string().contains("cannot open run store"), "{err}");
        }
    }

    #[test]
    fn request_verbs_round_trip_against_a_live_server() {
        let dir = std::env::temp_dir()
            .join("rpq_cli_serve")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_owned();
        run(&[
            "store", "fig2", "--dir", &dir_s, "--ingest", "2", "--edges", "70", "--seed", "5",
        ])
        .unwrap();

        // Bind in-process (the CLI path through `rpq serve` blocks; the
        // smoke test in CI covers the spawned-process flavor).
        let store = RunStore::open(&dir_s).unwrap();
        let server = Server::bind(store, &ServeConfig::default()).unwrap();
        server.warm().unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let serving = std::thread::spawn(move || server.run(None));

        assert!(run(&["request", "ping", "--addr", &addr])
            .unwrap()
            .contains("pong"));

        let runs_out = run(&["request", "runs", "--addr", &addr]).unwrap();
        assert!(runs_out.contains("2 stored run(s)"), "{runs_out}");
        let fp = runs_out
            .lines()
            .find(|l| l.trim_start().starts_with("r0"))
            .and_then(|l| l.split_whitespace().nth(2))
            .expect("fingerprint column")
            .to_owned();
        assert_eq!(fp.len(), 32, "{runs_out}");

        // Every evaluation mode, through the CLI client.
        let out = run(&["request", "query", "_* e _*", "--addr", &addr]).unwrap();
        assert!(out.contains("verdict:"), "{out}");
        let out = run(&[
            "request", "query", "_*", "--addr", &addr, "--from", "0", "--to", "1",
        ])
        .unwrap();
        assert!(out.contains("verdict:"), "{out}");
        let out = run(&["request", "query", "_*", "--addr", &addr, "--from", "0"]).unwrap();
        assert!(out.contains("matches:"), "{out}");
        let out = run(&["request", "query", "_*", "--addr", &addr, "--to", "0"]).unwrap();
        assert!(out.contains("matches:"), "{out}");
        let out = run(&[
            "request",
            "query",
            "_* a _*",
            "--addr",
            &addr,
            "--mode",
            "all-pairs",
            "--fp",
            &fp,
        ])
        .unwrap();
        assert!(out.contains("matches:"), "{out}");
        let out = run(&[
            "request",
            "query",
            "_*",
            "--addr",
            &addr,
            "--mode",
            "reachable",
            "--from",
            "0",
        ])
        .unwrap();
        assert!(out.contains("reachable:"), "{out}");

        // A forced strategy rides the wire and the resolved choice
        // comes back in the reply.
        for strategy in ["lazy", "materialized"] {
            let out = run(&[
                "request",
                "query",
                "_* a _*",
                "--addr",
                &addr,
                "--from",
                "0",
                "--strategy",
                strategy,
            ])
            .unwrap();
            assert!(out.contains(&format!("strategy: {strategy}")), "{out}");
        }

        // Server-side failures surface as errors, not hangs.
        let err = run(&["request", "query", "(((", "--addr", &addr]).unwrap_err();
        assert!(err.to_string().contains("parse"), "{err}");
        let err = run(&[
            "request",
            "query",
            "_*",
            "--addr",
            &addr,
            "--strategy",
            "eager",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("valid strategies"), "{err}");

        let stats = run(&["request", "stats", "--addr", &addr]).unwrap();
        assert!(stats.contains("2 run(s) stored"), "{stats}");
        assert!(stats.contains("request(s)"), "{stats}");

        let out = run(&["request", "shutdown", "--addr", &addr]).unwrap();
        assert!(out.contains("acknowledged shutdown"), "{out}");
        let report = serving.join().unwrap();
        assert!(report.requests >= 10, "{report:?}");

        // Usage errors.
        assert!(run(&["request", "query", "_*"]).is_err()); // no --addr
        let err = run(&["request", "teleport", "--addr", &addr]).unwrap_err();
        assert!(err.to_string().contains("unknown request verb"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_stream_and_offline_append_round_trip() {
        let dir = std::env::temp_dir()
            .join("rpq_cli_stream")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("run.json");
        let base = base.to_str().unwrap().to_owned();
        let store_dir = dir.join("store");
        let store_dir = store_dir.to_str().unwrap().to_owned();

        // Streamed simulation: base + 3 replayable event batches.
        let out = run(&[
            "simulate", "fig2", "--edges", "90", "--seed", "7", "--out", &base, "--stream", "3",
        ])
        .unwrap();
        assert!(out.contains("streamed: base"), "{out}");
        assert!(out.contains("batch 3:"), "{out}");
        for k in 1..=3 {
            let batch = load_events(&events_path(&base, k)).unwrap();
            assert!(!batch.is_empty(), "batch {k} is empty");
        }

        // Ingest the base, then replay every batch through the
        // live-append path. Each CLI invocation is a fresh process, so
        // the open-handle seq restarts at 1; the persisted catalog
        // epoch keeps climbing across invocations.
        run(&["store", "fig2", "--dir", &store_dir, "--add", &base]).unwrap();
        for k in 1..=3u64 {
            let events = events_path(&base, k as usize);
            let out = run(&[
                "store", "fig2", "--dir", &store_dir, "--open", "r0", "--events", &events,
            ])
            .unwrap();
            assert!(out.contains("appended"), "{out}");
            assert!(out.contains(&format!("seq 1, epoch {}", k + 1)), "{out}");
        }

        // The grown run answers queries like any stored run.
        let out = run(&["batch", "_* e _*", "--store", &store_dir]).unwrap();
        assert!(out.contains("over 1 run(s)"), "{out}");

        // Usage errors: the flags go together; the id must exist.
        let err = run(&["store", "fig2", "--dir", &store_dir, "--open", "r0"]).unwrap_err();
        assert!(err.to_string().contains("go together"), "{err}");
        let events = events_path(&base, 1);
        assert!(
            run(&["store", "fig2", "--dir", &store_dir, "--open", "r9", "--events", &events,])
                .is_err()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_streams_deltas_from_live_appends() {
        let dir = std::env::temp_dir()
            .join("rpq_cli_watch")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("run.json");
        let base = base.to_str().unwrap().to_owned();
        let store_dir = dir.join("store");
        let store_dir = store_dir.to_str().unwrap().to_owned();
        run(&[
            "simulate", "fig2", "--edges", "90", "--seed", "5", "--out", &base, "--stream", "2",
        ])
        .unwrap();
        run(&["store", "fig2", "--dir", &store_dir, "--add", &base]).unwrap();

        // ≥2 workers: a standing subscriber pins one for its duration.
        let store = RunStore::open(&store_dir).unwrap();
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let server = Server::bind(store, &config).unwrap();
        server.warm().unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let serving = std::thread::spawn(move || server.run(None));

        // An appender lands both batches while the watch stands.
        let batches: Vec<EventBatch> = (1..=2)
            .map(|k| load_events(&events_path(&base, k)).unwrap())
            .collect();
        let append_addr = addr.clone();
        let appender = std::thread::spawn(move || {
            let mut client =
                ServeClient::connect_with_retry(append_addr.as_str(), Duration::from_secs(5))
                    .unwrap();
            for batch in batches {
                std::thread::sleep(Duration::from_millis(300));
                client.append(RunAddr::Index(0), batch).unwrap();
            }
        });

        // `_*` over all pairs grows on every append (each new node is
        // reachable from itself), so the first delta is guaranteed.
        let out = run(&[
            "watch",
            "_*",
            "--addr",
            &addr,
            "--mode",
            "all-pairs",
            "--max-deltas",
            "1",
        ])
        .unwrap();
        assert!(out.contains("watch: 1 delta(s) received"), "{out}");
        appender.join().unwrap();

        let stats = run(&["request", "stats", "--addr", &addr]).unwrap();
        assert!(stats.contains("2 append(s)"), "{stats}");
        assert!(stats.contains("1 subscription(s)"), "{stats}");

        run(&["request", "shutdown", "--addr", &addr]).unwrap();
        serving.join().unwrap();
        assert!(run(&["watch", "_*"]).is_err()); // no --addr
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_run_and_spec_are_rejected() {
        let dir = std::env::temp_dir().join("rpq_cli_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run.json");
        let run_path = run_path.to_str().unwrap();
        run(&["simulate", "bioaid", "--edges", "60", "--out", run_path]).unwrap();
        let err = run(&["query", "fig2", "_*", "--run", run_path]).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(run(&["query", "fig2", "((("]).is_err());
        assert!(
            run(&["query", "fig2", "_*", "--from", "zz:9", "--to", "b:1"])
                .unwrap_err()
                .to_string()
                .contains("no node named")
        );
        assert!(run(&["simulate", "fig2", "--edges", "NaN"]).is_err());
        assert!(run(&["simulate", "fig2", "--fork", "7"])
            .unwrap_err()
            .to_string()
            .contains("cycle"));
    }

    #[test]
    fn error_variants_round_trip_through_display() {
        // Parse errors surface as RpqError::Parse...
        let err = run(&["query", "fig2", "((("]).unwrap_err();
        assert!(matches!(err, RpqError::Parse(_)), "{err:?}");
        // ...I/O errors as RpqError::Io with context...
        let err = run(&["spec", "/definitely/not/here.json"]).unwrap_err();
        assert!(matches!(err, RpqError::Io { .. }), "{err:?}");
        // ...and usage problems as RpqError::Invalid.
        let err = run(&["stats"]).unwrap_err();
        assert!(matches!(err, RpqError::Invalid(_)), "{err:?}");
    }
}
