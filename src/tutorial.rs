//! # Tutorial: from workflow specification to constant-time RPQs
//!
//! This walkthrough builds every concept of Huang et al. (ICDE 2015)
//! bottom-up on a worked example. All code blocks are doctests.
//!
//! ## 1. Specifications are graph grammars
//!
//! A workflow specification is a context-free graph grammar: composite
//! modules expand into DAGs of further modules. Validation enforces the
//! paper's coarse-grained model — every production body is a DAG with a
//! unique source and a unique sink:
//!
//! ```
//! use rpq::prelude::*;
//!
//! let mut b = SpecificationBuilder::new();
//! b.atomic("fetch");
//! b.atomic("clean");
//! b.atomic("report");
//! b.composite("Pipeline");
//! b.composite("Loop");
//! // Pipeline = fetch → Loop → report
//! b.production("Pipeline", |w| {
//!     let f = w.node("fetch");
//!     let l = w.node("Loop");
//!     let r = w.node("report");
//!     w.edge_named(f, l, "raw");
//!     w.edge_named(l, r, "final");
//! });
//! // Loop = clean → Loop  (strictly linear recursion) …
//! b.production("Loop", |w| {
//!     let c = w.node("clean");
//!     let l = w.node("Loop");
//!     w.edge_named(c, l, "pass");
//! });
//! // … with a base case.
//! b.production("Loop", |w| {
//!     w.node("clean");
//! });
//! b.start("Pipeline");
//! let spec = b.build().unwrap();
//!
//! assert!(spec.is_strictly_linear());
//! assert_eq!(spec.recursion().cycles.len(), 1);
//! ```
//!
//! Strict linearity (all production-graph cycles vertex-disjoint) is what
//! makes compact labeling possible; the builder accepts non-linear
//! grammars, but derivation refuses them.
//!
//! ## 2. Runs carry derivation-based labels
//!
//! A run is derived by node replacement. Each node is labeled *when it
//! is created* with its compressed-parse-tree path; recursion chains
//! become flat `(cycle, phase, index)` entries, so labels stay
//! logarithmic in run size:
//!
//! ```
//! # use rpq::prelude::*;
//! # let mut b = SpecificationBuilder::new();
//! # b.atomic("fetch"); b.atomic("clean"); b.atomic("report");
//! # b.composite("Pipeline"); b.composite("Loop");
//! # b.production("Pipeline", |w| {
//! #     let f = w.node("fetch"); let l = w.node("Loop"); let r = w.node("report");
//! #     w.edge_named(f, l, "raw"); w.edge_named(l, r, "final");
//! # });
//! # b.production("Loop", |w| {
//! #     let c = w.node("clean"); let l = w.node("Loop");
//! #     w.edge_named(c, l, "pass");
//! # });
//! # b.production("Loop", |w| { w.node("clean"); });
//! # b.start("Pipeline");
//! # let spec = b.build().unwrap();
//! let run = RunBuilder::new(&spec).seed(1).target_edges(64).build().unwrap();
//! assert!(run.n_edges() >= 64);
//!
//! // The 10th clean execution sits 10 recursion levels deep, yet its
//! // label has a constant number of entries.
//! let clean = spec.module_by_name("clean").unwrap();
//! let deep = run.nodes_of_module(clean)[9];
//! assert!(run.label(deep).depth() <= 3);
//! ```
//!
//! ## 3. Safety decides the evaluation strategy
//!
//! A query is *safe* when every module's executions agree on the DFA
//! state transitions between input and output. Queries are prepared
//! through a [`Session`](rpq_core::Session) — compiled once, cached by
//! normalized regex, evaluated many times. Safe queries get label-only
//! plans; unsafe ones are decomposed:
//!
//! ```
//! # use rpq::prelude::*;
//! # let mut b = SpecificationBuilder::new();
//! # b.atomic("fetch"); b.atomic("clean"); b.atomic("report");
//! # b.composite("Pipeline"); b.composite("Loop");
//! # b.production("Pipeline", |w| {
//! #     let f = w.node("fetch"); let l = w.node("Loop"); let r = w.node("report");
//! #     w.edge_named(f, l, "raw"); w.edge_named(l, r, "final");
//! # });
//! # b.production("Loop", |w| {
//! #     let c = w.node("clean"); let l = w.node("Loop");
//! #     w.edge_named(c, l, "pass");
//! # });
//! # b.production("Loop", |w| { w.node("clean"); });
//! # b.start("Pipeline");
//! # let spec = b.build().unwrap();
//! let session = Session::from_spec(spec);
//!
//! // Every run crosses raw exactly once: ⎵* raw ⎵* is safe.
//! let safe = session.prepare("_* raw _*").unwrap();
//! assert!(safe.is_safe());
//!
//! // Whether a path crosses `pass` depends on the loop count chosen at
//! // run time: ⎵* pass ⎵* is unsafe (the paper's Section III-C
//! // situation), so the planner decomposes it.
//! let unsafe_q = session.prepare("_* pass _*").unwrap();
//! assert!(!unsafe_q.is_safe());
//! assert!(unsafe_q.stats().n_safe_subqueries >= 1);
//!
//! // Preparing either query again is a cache hit, not a recompile.
//! session.prepare("_* raw _*").unwrap();
//! assert_eq!(session.stats().plan_hits, 1);
//! ```
//!
//! ## 4. Evaluation
//!
//! Pairwise queries on safe plans decode two labels in time independent
//! of run size; all-pairs queries merge label tries (Algorithm 2) and
//! filter candidate groups with shared-bridge bitmask algebra:
//!
//! ```
//! # use rpq::prelude::*;
//! # let mut b = SpecificationBuilder::new();
//! # b.atomic("fetch"); b.atomic("clean"); b.atomic("report");
//! # b.composite("Pipeline"); b.composite("Loop");
//! # b.production("Pipeline", |w| {
//! #     let f = w.node("fetch"); let l = w.node("Loop"); let r = w.node("report");
//! #     w.edge_named(f, l, "raw"); w.edge_named(l, r, "final");
//! # });
//! # b.production("Loop", |w| {
//! #     let c = w.node("clean"); let l = w.node("Loop");
//! #     w.edge_named(c, l, "pass");
//! # });
//! # b.production("Loop", |w| { w.node("clean"); });
//! # b.start("Pipeline");
//! # let spec = b.build().unwrap();
//! # let session = Session::from_spec(spec);
//! let run = RunBuilder::new(session.spec()).seed(2).target_edges(128).build().unwrap();
//!
//! // pass+ : chains of loop iterations.
//! let q = session.prepare("pass+").unwrap();
//! let all: Vec<NodeId> = run.node_ids().collect();
//! let outcome = session.evaluate(&q, &run, &QueryRequest::all_pairs(all.clone(), all));
//! let pairs = outcome.as_pairs().unwrap();
//! assert!(!pairs.is_empty());
//!
//! // Every result is confirmed by the run's actual edges.
//! let pass = session.spec().tag_by_name("pass").unwrap();
//! for (u, v) in pairs.iter().take(5) {
//!     assert_ne!(u, v);
//!     let _ = (u, v, pass);
//! }
//!
//! // Evaluation metadata records the strategy that ran, and a second
//! // evaluation over the same run reuses the cached tag index.
//! assert_eq!(outcome.meta.plan_kind, q.stats().kind);
//! let again = session.evaluate(&q, &run, &QueryRequest::pairwise(run.entry(), run.exit()));
//! use rpq::core::IndexCacheUse;
//! assert!(matches!(
//!     again.meta.index_cache,
//!     IndexCacheUse::Hit | IndexCacheUse::NotNeeded
//! ));
//! ```
//!
//! ## 5. Where to go next
//!
//! * [`crate::core::session`] — the session API: plan cache, per-run
//!   index cache, [`QueryRequest`](rpq_core::QueryRequest) modes;
//! * [`crate::core::safety`] — the λ-matrix fixpoint behind
//!   [`Session::is_safe`](rpq_core::Session::is_safe);
//! * [`crate::core::plan`] — the decoder and its bridge factorization;
//! * [`crate::core::cost`] — the cost model steering decomposed plans;
//! * `crates/bench` — every figure of the paper as a benchmark;
//! * EXPERIMENTS.md — measured-vs-paper discussion.

// This module is documentation-only.
