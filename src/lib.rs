#![warn(missing_docs)]

//! # rpq — Regular Path Queries on Workflow Provenance
//!
//! A from-scratch Rust reproduction of **Huang, Bao, Davidson, Milo, Yuan,
//! "Answering Regular Path Queries on Workflow Provenance" (ICDE 2015)**.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`automata`] — regexes, NFAs, DFAs, Hopcroft minimization.
//! * [`grammar`] — context-free graph-grammar workflow specifications.
//! * [`labeling`] — runs, derivation, compressed parse trees and the
//!   derivation-based reachability labels of Bao et al. (PVLDB 2012).
//! * [`relalg`] — node-pair relations, joins and Kleene fixpoints.
//! * [`core`] — the paper's contribution: safe-query detection,
//!   query-intersected grammars, constant-time pairwise decoding,
//!   all-pairs tree-merge evaluation and general-query decomposition.
//! * [`baselines`] — the baselines G1, G2, G3 and a brute-force referee.
//! * [`workloads`] — synthetic specifications matching the paper's
//!   datasets, run simulation and query generators.
//! * [`store`] — the persistent multi-run store: run catalog with
//!   fingerprint deduplication, binary-coded runs and warm
//!   tag-index/CSR artifacts, feeding
//!   [`Session::evaluate_batch`](rpq_core::Session::evaluate_batch).
//! * [`serve`] — the network layer: a concurrent TCP query service
//!   over a warm store ([`Server`](rpq_serve::Server)), its binary
//!   protocol, and the [`ServeClient`](rpq_serve::ServeClient) it is
//!   queried with.
//!
//! ## The session API
//!
//! Queries are asked through a [`Session`](rpq_core::Session), the
//! paper's *compile once, evaluate many* economics made explicit:
//! [`Session::prepare`](rpq_core::Session::prepare) compiles a query
//! (safety check, query-intersected grammar, decomposition) into a
//! reusable [`PreparedQuery`](rpq_core::PreparedQuery), and
//! [`Session::evaluate`](rpq_core::Session::evaluate) answers
//! [`QueryRequest`](rpq_core::QueryRequest)s over any number of runs.
//! The session caches compiled plans (by normalized regex) and per-run
//! tag indexes, so neither is ever rebuilt. Every failure mode is the
//! single [`RpqError`](rpq_core::RpqError) enum.
//!
//! ## Quickstart
//!
//! ```
//! use rpq::prelude::*;
//!
//! // The paper's Fig. 2 workflow specification.
//! let spec = rpq::workloads::paper_examples::fig2_spec();
//!
//! // Derive a labeled run (a provenance DAG).
//! let run = RunBuilder::new(&spec).seed(42).target_edges(64).build().unwrap();
//!
//! // Open a session and prepare the paper's query R3 = ⎵* e ⎵*.
//! let session = Session::from_spec(spec);
//! let r3 = session.prepare("_* e _*").unwrap();
//! assert!(r3.is_safe());
//!
//! // Evaluate: all pairs over the whole run.
//! let nodes: Vec<_> = run.node_ids().collect();
//! let outcome = session.evaluate(&r3, &run, &QueryRequest::all_pairs(nodes.clone(), nodes));
//! assert!(!outcome.is_empty());
//!
//! // Pairwise answers decode two labels in constant time.
//! assert!(session.pairwise(&r3, &run, run.entry(), run.exit()));
//! ```

pub mod cli;
pub mod tutorial;

pub use rpq_automata as automata;
pub use rpq_baselines as baselines;
pub use rpq_core as core;
pub use rpq_grammar as grammar;
pub use rpq_labeling as labeling;
pub use rpq_relalg as relalg;
pub use rpq_router as router;
pub use rpq_serve as serve;
pub use rpq_store as store;
pub use rpq_workloads as workloads;

/// Convenience re-exports for the most common entry points.
pub mod prelude {
    pub use rpq_automata::{Regex, Symbol};
    pub use rpq_core::{
        BatchOptions, BatchOutcome, EvalStrategy, PlanKind, PlanStats, PreparedQuery, QueryOutcome,
        QueryPlan, QueryRequest, QueryResult, RpqError, RunSource, SafeQueryPlan, Session,
        SessionStats, SubqueryPolicy,
    };
    pub use rpq_grammar::{ModuleId, ProductionId, Specification, SpecificationBuilder, Tag};
    pub use rpq_labeling::{NodeId, Run, RunBuilder};
    pub use rpq_relalg::{NodePairSet, TagIndex};
    pub use rpq_router::{Router, RouterConfig};
    pub use rpq_serve::{ServeClient, ServeConfig, Server};
    pub use rpq_store::{RunId, RunStore, StoreStats};
}
