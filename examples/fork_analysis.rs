//! Kleene-star analytics over fork-heavy provenance (Fig. 14).
//!
//! BioAID-style workflows fork a sub-analysis off a distributor chain;
//! "data processed by forks" is queried with `fork*`. This example
//! compares the label-based evaluator against the G1 join/fixpoint
//! baseline on growing runs — the Fig. 13g experiment in miniature.
//!
//! ```text
//! cargo run --release --example fork_analysis
//! ```

use rpq::baselines::G1;
use rpq::core::all_pairs_filtered;
use rpq::prelude::*;
use rpq::workloads::paper_examples::fork_spec;
use std::time::Instant;

fn main() {
    let session = Session::from_spec(fork_spec());
    // Prepared once here; evaluated over every run size below.
    let star = session.prepare("fork*").unwrap();
    println!("query fork*  (safe: {})\n", star.is_safe());
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>8}",
        "run edges", "matches", "G1 fixpoint", "optRPL", "speedup"
    );

    for target in [250usize, 1000, 4000] {
        let run = rpq::workloads::runs::simulate_fork(session.spec(), 0, target, 7).unwrap();
        let (index, _) = session.index_for(&run);
        let all: Vec<NodeId> = run.node_ids().collect();

        // Baseline G1: materialize the fork relation and iterate the
        // fixpoint until no new pairs appear.
        let g1 = G1::new(&index);
        let t0 = Instant::now();
        let baseline = g1.all_pairs(star.regex(), &all, &all);
        let t_g1 = t0.elapsed();

        // Our approach: the star is safe, so Algorithm 2 merges the
        // label tries and decodes candidates in constant time each.
        let plan = star.safe_plan().expect("fork* is safe");
        let t0 = Instant::now();
        let ours = all_pairs_filtered(plan, session.spec(), &run, &all, &all);
        let t_rpl = t0.elapsed();

        assert_eq!(baseline, ours, "evaluators must agree");
        println!(
            "{:>10} {:>9} {:>12} {:>12} {:>7.1}x",
            run.n_edges(),
            ours.len(),
            format!("{:.2?}", t_g1),
            format!("{:.2?}", t_rpl),
            t_g1.as_secs_f64() / t_rpl.as_secs_f64().max(1e-9),
        );
    }

    println!(
        "\nThe fixpoint cost grows with the run; the label-based plan\n\
         only pays per candidate pair — the shape of the paper's Fig. 13g."
    );
}
