//! Quickstart: build the paper's Fig. 2 workflow, derive its Fig. 2b
//! run, and evaluate the worked example queries through a `Session`.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rpq::prelude::*;
use rpq::workloads::paper_examples;

fn main() {
    // The workflow specification of Fig. 2a: a pipeline S with a
    // recursive analysis module A (repeat W2, finish with W3) and a
    // two-step postprocessor B.
    let spec = paper_examples::fig2_spec();
    println!("{}", rpq::grammar::display::SpecDisplay(&spec));

    // Derive the exact run of Fig. 2b. Labels are assigned while the
    // run is created — query processing never traverses the run again.
    let run = paper_examples::fig2_run(&spec);
    println!("run: {} nodes, {} edges", run.n_nodes(), run.n_edges());
    for (id, node) in run.nodes() {
        println!("  {:>4}  ψV = {}", run.node_name(&spec, id), node.label);
    }

    // A session compiles each query once and caches the plan; the
    // prepared handles stay valid for every future run.
    let session = Session::from_spec(spec);

    // R3 = ⎵* e ⎵* — "a path that passes through an e-tagged edge".
    // Safe w.r.t. the specification (Example 3.4), so it compiles to a
    // label-decoding plan with constant-time pairwise answers.
    let r3 = session.prepare("_* e _*").unwrap();
    println!("\nR3 = _* e _*  (safe: {})", r3.is_safe());
    for (u, v) in [("c:1", "b:1"), ("c:1", "b:3"), ("d:2", "b:1")] {
        let un = run.node_by_name(session.spec(), u).unwrap();
        let vn = run.node_by_name(session.spec(), v).unwrap();
        let outcome = session.evaluate(&r3, &run, &QueryRequest::pairwise(un, vn));
        println!("  {u} -R3-> {v} : {}", outcome.as_bool().unwrap());
    }

    // ⎵* a ⎵* is *unsafe* for this specification (Section III-C): the
    // planner decomposes it into safe parts plus an index lookup.
    let r4 = session.prepare("_* a _*").unwrap();
    println!(
        "\nR4 = _* a _*  (safe: {}, safe subqueries: {})",
        r4.is_safe(),
        r4.stats().n_safe_subqueries
    );
    let all: Vec<NodeId> = run.node_ids().collect();
    let outcome = session.evaluate(&r4, &run, &QueryRequest::all_pairs(all.clone(), all));
    let result = outcome.as_pairs().unwrap();
    println!("  all-pairs matches: {}", result.len());
    for (u, v) in result.iter().take(5) {
        println!(
            "    {} -> {}",
            run.node_name(session.spec(), u),
            run.node_name(session.spec(), v)
        );
    }

    // The session cached the tag index it built for R4's evaluation;
    // any further composite query on this run reuses it.
    println!("\nsession stats: {:?}", session.stats());
}
