//! Quickstart: build the paper's Fig. 2 workflow, derive its Fig. 2b
//! run, and evaluate the worked example queries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rpq::prelude::*;
use rpq::workloads::paper_examples;

fn main() {
    // The workflow specification of Fig. 2a: a pipeline S with a
    // recursive analysis module A (repeat W2, finish with W3) and a
    // two-step postprocessor B.
    let spec = paper_examples::fig2_spec();
    println!("{}", rpq::grammar::display::SpecDisplay(&spec));

    // Derive the exact run of Fig. 2b. Labels are assigned while the
    // run is created — query processing never traverses the run again.
    let run = paper_examples::fig2_run(&spec);
    println!("run: {} nodes, {} edges", run.n_nodes(), run.n_edges());
    for (id, node) in run.nodes() {
        println!(
            "  {:>4}  ψV = {}",
            run.node_name(&spec, id),
            node.label
        );
    }

    let engine = RpqEngine::new(&spec);

    // R3 = ⎵* e ⎵* — "a path that passes through an e-tagged edge".
    // Safe w.r.t. the specification (Example 3.4), so it compiles to a
    // label-decoding plan with constant-time pairwise answers.
    let r3 = engine.parse_query("_* e _*").unwrap();
    let plan = engine.plan(&r3).unwrap();
    println!("\nR3 = _* e _*  (safe: {})", plan.is_safe());
    for (u, v) in [("c:1", "b:1"), ("c:1", "b:3"), ("d:2", "b:1")] {
        let un = run.node_by_name(&spec, u).unwrap();
        let vn = run.node_by_name(&spec, v).unwrap();
        println!("  {u} -R3-> {v} : {}", engine.pairwise(&plan, &run, un, vn));
    }

    // ⎵* a ⎵* is *unsafe* for this specification (Section III-C): the
    // planner decomposes it into safe parts plus an index lookup.
    let r4 = engine.parse_query("_* a _*").unwrap();
    let plan4 = engine.plan(&r4).unwrap();
    println!(
        "\nR4 = _* a _*  (safe: {}, safe subqueries: {})",
        plan4.is_safe(),
        plan4.n_safe_subqueries()
    );
    let all: Vec<NodeId> = run.node_ids().collect();
    let result = engine.all_pairs(&plan4, &run, &all, &all);
    println!("  all-pairs matches: {}", result.len());
    for (u, v) in result.iter().take(5) {
        println!(
            "    {} -> {}",
            run.node_name(&spec, u),
            run.node_name(&spec, v)
        );
    }
}
