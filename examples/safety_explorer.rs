//! Safety explorer: which regular path queries are *safe* for a
//! workflow specification?
//!
//! Safety (Definition 13) is the paper's core property: a query is safe
//! when every module's executions agree on the DFA state transitions
//! between its input and output, making label-only evaluation possible.
//! This example profiles randomly generated queries against the
//! BioAID-like specification and prints example members of each class
//! with their λ-matrix witnesses.
//!
//! ```text
//! cargo run --example safety_explorer
//! ```

use rpq::prelude::*;
use rpq::workloads::{bioaid_like, QueryGen};

fn main() {
    let real = bioaid_like();
    let spec = &real.spec;
    let session = Session::from_spec(spec.clone());
    println!(
        "specification: {} (size {}, {} productions, {} cycles)\n",
        real.name,
        spec.size(),
        spec.productions().len(),
        spec.recursion().cycles.len()
    );

    let namer = |s: Symbol| spec.tag_name(rpq::grammar::Tag(s.0)).to_owned();
    let mut qg = QueryGen::new(spec, 99);
    let mut safe_examples: Vec<String> = Vec::new();
    let mut unsafe_examples: Vec<String> = Vec::new();
    let (mut n_safe, mut n_total) = (0, 0);

    for _ in 0..200 {
        let q = qg.random_query(5);
        n_total += 1;
        let display = q.display_with(&namer).to_string();
        if session.is_safe(&q) {
            n_safe += 1;
            if safe_examples.len() < 5 {
                safe_examples.push(display);
            }
        } else if unsafe_examples.len() < 5 {
            unsafe_examples.push(display);
        }
    }

    println!("random queries: {n_safe}/{n_total} safe\n");
    println!("example safe queries (evaluated purely from labels):");
    for q in &safe_examples {
        println!("  {q}");
    }
    println!("\nexample unsafe queries (decomposed into safe parts + joins):");
    for q in &unsafe_examples {
        println!("  {q}");
    }

    // Show a λ matrix: how executions of the first recursive module
    // transform the states of a safe query's DFA.
    let star = qg.kleene_star(&real.cycle_tags[0]).unwrap();
    let plan = session.plan_safe(&star).unwrap();
    let cycle_module = spec.recursion().cycles[0].edges[0].from;
    println!(
        "\nλ({}) for the safe query {}*:",
        spec.module_name(cycle_module),
        real.cycle_tags[0]
    );
    let lambda = plan.lambda(cycle_module);
    for q in 0..plan.n_states() {
        let row: String = (0..plan.n_states())
            .map(|r| if lambda.get(q, r) { '1' } else { '0' })
            .collect();
        println!("  state {q}: {row}");
    }
    println!(
        "\nEvery execution of {} induces exactly this transition matrix —\n\
         that is what lets the decoder skip the module entirely.",
        spec.module_name(cycle_module)
    );
}
