//! Provenance audit over a scientific-workflow repository run.
//!
//! The introduction's motivating query: *"Find all publications p that
//! resulted from starting with data of type x, then performing a
//! repeated analysis using either technique a1 or technique a2,
//! terminated by producing a result of type s, and eventually ending by
//! publishing p."*
//!
//! This example builds a genomics-flavored workflow with that structure
//! and audits a simulated execution. Note the modeling constraint from
//! the paper: strict linear recursion allows a single recursive
//! production per cycle, so the per-iteration choice of technique lives
//! in a non-recursive `Round` module with two implementations.
//!
//! ```text
//! cargo run --example provenance_audit
//! ```

use rpq::prelude::*;

fn build_spec() -> Specification {
    let mut b = SpecificationBuilder::new();
    for m in [
        "ingest",
        "prep",
        "align1",
        "align2",
        "summarize",
        "archive",
        "publish",
    ] {
        b.atomic(m);
    }
    b.composite("Study");
    b.composite("Analysis");
    b.composite("Round");

    // Study: ingest raw data, run the (repeated) analysis, archive the
    // result, publish.
    b.production("Study", |w| {
        let ingest = w.node("ingest");
        let analysis = w.node("Analysis");
        let archive = w.node("archive");
        let publish = w.node("publish");
        w.edge_named(ingest, analysis, "x"); // data of type x
        w.edge_named(analysis, archive, "s"); // result of type s
        w.edge_named(archive, publish, "p"); // the publication
    });
    // Analysis: one Round feeding the rest of the analysis, or the
    // terminal summary.
    b.production("Analysis", |w| {
        let round = w.node("Round");
        let rest = w.node("Analysis");
        w.edge_named(round, rest, "feed");
    });
    b.production("Analysis", |w| {
        let s1 = w.node("summarize");
        let s2 = w.node("summarize");
        w.edge_named(s1, s2, "draft");
    });
    // Round: technique a1 or technique a2.
    b.production("Round", |w| {
        let p = w.node("prep");
        let a = w.node("align1");
        w.edge_named(p, a, "a1");
    });
    b.production("Round", |w| {
        let p = w.node("prep");
        let a = w.node("align2");
        w.edge_named(p, a, "a2");
    });
    b.start("Study");
    b.build().expect("audit spec is well-formed")
}

fn main() {
    let spec = build_spec();
    assert!(spec.is_strictly_linear());
    let run = RunBuilder::new(&spec)
        .seed(2026)
        .target_edges(60)
        .build()
        .expect("derivation succeeds");
    println!(
        "simulated study run: {} module executions, {} data edges",
        run.n_nodes(),
        run.n_edges()
    );

    let session = Session::from_spec(spec.clone());

    // The introduction's query, adapted to the spec's tag alphabet: each
    // analysis round contributes `(a1|a2) feed`.
    let audit = session.prepare("x ((a1|a2) feed)+ draft s _* p").unwrap();
    println!(
        "audit query: x ((a1|a2) feed)+ draft s _* p   (safe: {}, safe subqueries: {})",
        audit.is_safe(),
        audit.stats().n_safe_subqueries
    );

    let sources: Vec<NodeId> = run
        .nodes()
        .filter(|(_, n)| spec.module_name(n.module) == "ingest")
        .map(|(id, _)| id)
        .collect();
    let sinks: Vec<NodeId> = run
        .nodes()
        .filter(|(_, n)| spec.module_name(n.module) == "publish")
        .map(|(id, _)| id)
        .collect();

    let matches = session.all_pairs(&audit, &run, &sources, &sinks);
    println!(
        "audited lineages from {} ingest(s) to {} publication(s): {} match",
        sources.len(),
        sinks.len(),
        matches.len()
    );
    for (u, v) in matches.iter() {
        println!(
            "  {} ==> {}",
            run.node_name(&spec, u),
            run.node_name(&spec, v)
        );
    }

    // Negative control: an audit requiring technique a1 in *every*
    // round. A run whose analysis ever switched to a2 must not match.
    // The per-run tag index built for the first audit is reused here.
    let strict = session.prepare("x (a1 feed)+ draft s _* p").unwrap();
    let strict_matches = session.all_pairs(&strict, &run, &sources, &sinks);
    let a2 = spec.tag_by_name("a2").unwrap();
    let used_a2 = run.edges().iter().any(|e| e.tag == a2);
    println!(
        "strict (a1-only) lineages: {} match (run used a2: {used_a2})",
        strict_matches.len()
    );
    assert_eq!(strict_matches.is_empty(), used_a2);
}
